//! Multi-Head Self-Attention with manual backprop.
//!
//! Implements the MHSA block of the paper's Fig. 1: three linear projections
//! onto `H` heads of dimension `P` (`H·P` need not equal the embedding width
//! `C` — Bioformer (h=8) projects 64 → 8×32 = 256), scaled dot-product
//! attention `softmax(QKᵀ/√P)·V` per head, then an output projection back to
//! `R^C`.

use crate::linear::{FusedActivation, Linear};
use crate::param::Param;
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::ops::{softmax_rows, softmax_rows_backward, softmax_rows_slice};
use bioformer_tensor::pack::Epilogue;
use bioformer_tensor::{Tensor, TensorArena};
use rand::Rng;
use std::sync::Arc;

/// Multi-head self-attention over `[batch, seq, embed]` tensors.
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    embed: usize,
    heads: usize,
    head_dim: usize,
    cache: Option<AttnCache>,
    /// Backend for the per-head score/AV GEMMs (the projections route
    /// through their own [`Linear`] layers' backends).
    backend: Arc<dyn ComputeBackend>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    batch: usize,
    seq: usize,
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax outputs, one `[seq, seq]` matrix per `(batch, head)` pair,
    /// indexed `b * heads + h`.
    attn: Vec<Tensor>,
}

impl MultiHeadSelfAttention {
    /// Creates an MHSA layer with `heads` heads of width `head_dim` over an
    /// embedding of width `embed`.
    pub fn new(
        name: &str,
        embed: usize,
        heads: usize,
        head_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let inner = heads * head_dim;
        MultiHeadSelfAttention {
            wq: Linear::new(&format!("{name}.wq"), embed, inner, rng),
            wk: Linear::new(&format!("{name}.wk"), embed, inner, rng),
            wv: Linear::new(&format!("{name}.wv"), embed, inner, rng),
            wo: Linear::new(&format!("{name}.wo"), inner, embed, rng),
            embed,
            heads,
            head_dim,
            cache: None,
            backend: default_backend(),
        }
    }

    /// Installs a compute backend on the per-head GEMMs and all four
    /// projection layers.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.wq.set_backend(backend.clone());
        self.wk.set_backend(backend.clone());
        self.wv.set_backend(backend.clone());
        self.wo.set_backend(backend.clone());
        self.backend = backend;
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head projection width `P`.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Embedding width `C`.
    pub fn embed(&self) -> usize {
        self.embed
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.wq.num_params() + self.wk.num_params() + self.wv.num_params() + self.wo.num_params()
    }

    /// Extracts head `h` of sample `b` from a `[batch·seq, heads·head_dim]`
    /// projection into a dense `[seq, head_dim]` matrix.
    fn head_slice(&self, proj: &Tensor, b: usize, h: usize, seq: usize) -> Tensor {
        let inner = self.heads * self.head_dim;
        let p = self.head_dim;
        let mut out = Tensor::zeros(&[seq, p]);
        for s in 0..seq {
            let src =
                &proj.data()[(b * seq + s) * inner + h * p..(b * seq + s) * inner + (h + 1) * p];
            out.data_mut()[s * p..(s + 1) * p].copy_from_slice(src);
        }
        out
    }

    /// Scatters a `[seq, head_dim]` matrix back into head `h` of sample `b`.
    fn head_scatter(&self, dst: &mut Tensor, src: &Tensor, b: usize, h: usize, seq: usize) {
        let inner = self.heads * self.head_dim;
        let p = self.head_dim;
        for s in 0..seq {
            let d = &mut dst.data_mut()
                [(b * seq + s) * inner + h * p..(b * seq + s) * inner + (h + 1) * p];
            d.copy_from_slice(&src.data()[s * p..(s + 1) * p]);
        }
    }

    /// Forward pass over `[batch, seq, embed]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 3-D with the configured embedding width.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        assert_eq!(x.shape().rank(), 3, "MHSA: input must be [B, S, C]");
        let (batch, seq, embed) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(embed, self.embed, "MHSA: embedding width mismatch");
        let rows = batch * seq;
        let x2 = x.reshape(&[rows, embed]);

        let q = self.wq.forward(&x2, true);
        let k = self.wk.forward(&x2, true);
        let v = self.wv.forward(&x2, true);

        let inner = self.heads * self.head_dim;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concat = Tensor::zeros(&[rows, inner]);
        let mut attn_cache = Vec::with_capacity(batch * self.heads);
        for b in 0..batch {
            for h in 0..self.heads {
                let qh = self.head_slice(&q, b, h, seq);
                let kh = self.head_slice(&k, b, h, seq);
                let vh = self.head_slice(&v, b, h, seq);
                let mut scores = qh.matmul_nt(&kh);
                scores.scale_in_place(scale);
                let a = softmax_rows(&scores);
                let oh = a.matmul(&vh);
                self.head_scatter(&mut concat, &oh, b, h, seq);
                attn_cache.push(a);
            }
        }
        let y2 = self.wo.forward(&concat, true);
        self.cache = Some(AttnCache {
            batch,
            seq,
            q,
            k,
            v,
            attn: attn_cache,
        });
        y2.reshape(&[batch, seq, embed])
    }

    /// Inference-only forward over `[batch, seq, embed]` through `&self`:
    /// same arithmetic as `forward(x, false)`, no cache writes, so one
    /// attention layer can serve concurrent readers without cloning.
    ///
    /// Implemented as [`MultiHeadSelfAttention::forward_infer_in`] over a
    /// throwaway arena, so the two paths cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 3-D with the configured embedding width.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        self.forward_infer_in(x, &mut TensorArena::new())
    }

    /// Copies head `h` of sample `b` from a `[batch·seq, heads·head_dim]`
    /// projection buffer into a dense `[seq, head_dim]` scratch slice.
    fn gather_head(&self, proj: &[f32], b: usize, h: usize, seq: usize, dst: &mut [f32]) {
        let inner = self.heads * self.head_dim;
        let p = self.head_dim;
        for s in 0..seq {
            let at = (b * seq + s) * inner + h * p;
            dst[s * p..(s + 1) * p].copy_from_slice(&proj[at..at + p]);
        }
    }

    /// Arena variant of [`MultiHeadSelfAttention::forward_infer`]: every
    /// intermediate (projections, per-head slices, attention scores, packed
    /// panels) is drawn from `arena` and recycled before returning;
    /// projections run on the layers' cached packed weights with the bias
    /// fused into the GEMM, and the `1/√P` scaling is fused into the score
    /// GEMM's store loop. Bit-identical logits to the plain path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 3-D with the configured embedding width.
    pub fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        assert_eq!(x.shape().rank(), 3, "MHSA: input must be [B, S, C]");
        let (batch, seq, embed) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(embed, self.embed, "MHSA: embedding width mismatch");
        let rows = batch * seq;
        let inner = self.heads * self.head_dim;
        let (s, p) = (seq, self.head_dim);
        let scale = 1.0 / (p as f32).sqrt();

        // Projections straight off the [B,S,E] buffer (row-major [rows, E]
        // by layout — no reshape copy).
        let project = |lin: &Linear, arena: &mut TensorArena| {
            let mut t = arena.alloc(rows * inner);
            lin.infer_into(x.data(), rows, &mut t, FusedActivation::None);
            t
        };
        let q = project(&self.wq, arena);
        let k = project(&self.wk, arena);
        let v = project(&self.wv, arena);

        // Backend plans for the two per-head GEMM shapes; packed-panel
        // sizes are plan-dependent, so resolve before allocating scratch.
        let bk = self.backend.as_ref();
        let plan_scores = bk.plan_fp32(s, p, s);
        let plan_av = bk.plan_fp32(s, s, p);

        let mut concat = arena.tensor(&[rows, inner]);
        // Per-head scratch, reused across every (batch, head) pair.
        let mut qh = arena.alloc(s * p);
        let mut kh = arena.alloc(s * p);
        let mut vh = arena.alloc(s * p);
        let mut kh_packed = arena.alloc(plan_scores.packed_len(p, s));
        let mut vh_packed = arena.alloc(plan_av.packed_len(s, p));
        let mut scores = arena.alloc(s * s);
        let mut oh = arena.alloc(s * p);
        for b in 0..batch {
            for h in 0..self.heads {
                self.gather_head(&q, b, h, seq, &mut qh);
                self.gather_head(&k, b, h, seq, &mut kh);
                self.gather_head(&v, b, h, seq, &mut vh);
                // scores[s,s] = (qh · khᵀ) · scale, scale fused into store.
                bk.pack_b_t_into(plan_scores, &kh, s, p, &mut kh_packed);
                bk.gemm_with(
                    plan_scores,
                    &qh,
                    s,
                    p,
                    &kh_packed,
                    s,
                    &mut scores,
                    Epilogue::Scale(scale),
                );
                softmax_rows_slice(&mut scores, s);
                // oh[s,p] = probs · vh.
                bk.pack_b_into(plan_av, &vh, s, p, &mut vh_packed);
                bk.gemm_with(
                    plan_av,
                    &scores,
                    s,
                    s,
                    &vh_packed,
                    p,
                    &mut oh,
                    Epilogue::None,
                );
                // Scatter into head h's columns of concat.
                let cd = concat.data_mut();
                for si in 0..seq {
                    let at = (b * seq + si) * inner + h * p;
                    cd[at..at + p].copy_from_slice(&oh[si * p..(si + 1) * p]);
                }
            }
        }
        for buf in [q, k, v, qh, kh, vh, kh_packed, vh_packed, scores, oh] {
            arena.recycle_vec(buf);
        }

        let mut out = arena.tensor(&[rows, embed]);
        self.wo
            .infer_into(concat.data(), rows, out.data_mut(), FusedActivation::None);
        arena.recycle(concat);
        out.reshape_in_place(&[batch, seq, embed]);
        out
    }

    /// Backward pass: accumulates projection gradients, returns `dx` of
    /// shape `[batch, seq, embed]`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("MHSA: backward before training-mode forward");
        let (batch, seq) = (cache.batch, cache.seq);
        let rows = batch * seq;
        let inner = self.heads * self.head_dim;
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        let dy2 = dy.reshape(&[rows, self.embed]);
        let dconcat = self.wo.backward(&dy2);

        let mut dq = Tensor::zeros(&[rows, inner]);
        let mut dk = Tensor::zeros(&[rows, inner]);
        let mut dv = Tensor::zeros(&[rows, inner]);
        for b in 0..batch {
            for h in 0..self.heads {
                let a = &cache.attn[b * self.heads + h];
                let doh = self.head_slice(&dconcat, b, h, seq);
                let qh = self.head_slice(&cache.q, b, h, seq);
                let kh = self.head_slice(&cache.k, b, h, seq);
                let vh = self.head_slice(&cache.v, b, h, seq);

                // O = A·V
                let da = doh.matmul_nt(&vh); // [S,S]
                let dvh = a.matmul_tn(&doh); // [S,P]
                                             // A = softmax(Z), Z = Q·Kᵀ·scale
                let dz = softmax_rows_backward(a, &da); // [S,S]
                let mut dqh = dz.matmul(&kh); // [S,P]
                dqh.scale_in_place(scale);
                let mut dkh = dz.matmul_tn(&qh); // dZᵀ·Q = (S,S)ᵀ·(S,P)
                dkh.scale_in_place(scale);

                self.head_scatter(&mut dq, &dqh, b, h, seq);
                self.head_scatter(&mut dk, &dkh, b, h, seq);
                self.head_scatter(&mut dv, &dvh, b, h, seq);
            }
        }

        let mut dx2 = self.wq.backward(&dq);
        dx2.add_assign(&self.wk.backward(&dk));
        dx2.add_assign(&self.wv.backward(&dv));
        dx2.reshape(&[batch, seq, self.embed])
    }

    /// Visits the projection parameters in deterministic order
    /// (`wq, wk, wv, wo`).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    /// Drops all forward caches.
    pub fn clear_cache(&mut self) {
        self.cache = None;
        self.wq.clear_cache();
        self.wk.clear_cache();
        self.wv.clear_cache();
        self.wo.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut attn = MultiHeadSelfAttention::new("a", 16, 4, 8, &mut rng);
        let x = filled(&[2, 5, 16], 1);
        let y = attn.forward(&x, false);
        assert_eq!(y.dims(), &[2, 5, 16]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn paper_shapes_h8_p32() {
        let mut rng = StdRng::seed_from_u64(1);
        // Bio1: C=64, H=8, P=32 (H·P = 256 ≠ C).
        let mut attn = MultiHeadSelfAttention::new("a", 64, 8, 32, &mut rng);
        let x = filled(&[1, 31, 64], 2);
        let y = attn.forward(&x, false);
        assert_eq!(y.dims(), &[1, 31, 64]);
        // params: 3·(64·256+256) + 256·64+64 = 49920 + 16448
        assert_eq!(attn.num_params(), 66_368);
    }

    #[test]
    fn batch_independence() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut attn = MultiHeadSelfAttention::new("a", 8, 2, 4, &mut rng);
        let a = filled(&[1, 4, 8], 4);
        let b = filled(&[1, 4, 8], 5);
        let mut both = Tensor::zeros(&[2, 4, 8]);
        both.data_mut()[..32].copy_from_slice(a.data());
        both.data_mut()[32..].copy_from_slice(b.data());
        let ya = attn.forward(&a, false);
        let yb = attn.forward(&b, false);
        let yboth = attn.forward(&both, false);
        assert!(
            (0..32).all(|i| (yboth.data()[i] - ya.data()[i]).abs() < 1e-5),
            "first sample differs"
        );
        assert!(
            (0..32).all(|i| (yboth.data()[32 + i] - yb.data()[i]).abs() < 1e-5),
            "second sample differs"
        );
    }

    #[test]
    fn gradcheck_input() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut attn = MultiHeadSelfAttention::new("a", 6, 2, 3, &mut rng);
        let x = filled(&[2, 3, 6], 7);
        let y = attn.forward(&x, true);
        let dy = filled(y.dims(), 8);
        let dx = attn.backward(&dy);

        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = attn.forward(&xp, false).mul(&dy).sum();
            let fm = attn.forward(&xm, false).mul(&dy).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}] fd={num} got={}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn gradcheck_projection_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut attn = MultiHeadSelfAttention::new("a", 4, 2, 2, &mut rng);
        let x = filled(&[1, 3, 4], 10);
        let y = attn.forward(&x, true);
        let dy = filled(y.dims(), 11);
        let _ = attn.backward(&dy);

        // Snapshot analytic grads for every projection parameter.
        let mut grads: Vec<Tensor> = Vec::new();
        attn.visit_params(&mut |p| grads.push(p.grad.clone()));

        let eps = 1e-3;
        for (pi, _) in grads.iter().enumerate() {
            // Check a few elements of each parameter tensor.
            let n_elems = grads[pi].len();
            for idx in (0..n_elems).step_by((n_elems / 4).max(1)) {
                let mut orig = 0.0;
                let mut count = 0usize;
                attn.visit_params(&mut |p| {
                    if count == pi {
                        orig = p.value.data()[idx];
                        p.value.data_mut()[idx] = orig + eps;
                    }
                    count += 1;
                });
                let fp = attn.forward(&x, false).mul(&dy).sum();
                count = 0;
                attn.visit_params(&mut |p| {
                    if count == pi {
                        p.value.data_mut()[idx] = orig - eps;
                    }
                    count += 1;
                });
                let fm = attn.forward(&x, false).mul(&dy).sum();
                count = 0;
                attn.visit_params(&mut |p| {
                    if count == pi {
                        p.value.data_mut()[idx] = orig;
                    }
                    count += 1;
                });
                let num = (fp - fm) / (2.0 * eps);
                assert!(
                    (num - grads[pi].data()[idx]).abs() < 2e-2,
                    "param {pi} elem {idx}: fd={num} got={}",
                    grads[pi].data()[idx]
                );
            }
        }
    }
}
