//! Mini-batch training loop with deterministic shuffling and data-parallel
//! gradient computation.
//!
//! Each optimizer step splits its mini-batch into shards; every shard runs
//! forward/backward on a deep copy of the model on its own scoped thread and
//! the per-shard gradients are summed into the primary model. Because
//! gradient contributions are scaled by `shard_size / batch_size`, the result
//! is bit-for-bit a full-batch gradient regardless of shard count (up to
//! float summation order).

use crate::loss::cross_entropy;
use crate::model::Model;
use crate::optim::Adam;
use crate::schedule::LrSchedule;
use bioformer_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training-time data augmentation for `[batch, channels, len]` windows.
///
/// Substitutes for the data abundance of the real recordings: the paper's
/// DB6 protocol yields ~10⁵ highly-overlapping windows per subject, which
/// implicitly regularises position- and gain-sensitive models; the scaled
/// synthetic corpus does not, so the trainer can synthesise the same
/// invariances explicitly. Applied identically to every model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Circularly roll each window along time by a uniform offset in
    /// `0..=max_roll` samples (breaks absolute-position memorisation while
    /// keeping gross temporal structure learnable; 0 disables).
    pub max_roll: usize,
    /// Multiply each channel by `1 ± U(0, gain_jitter)` (electrode-gain
    /// robustness — the dominant component of session drift).
    pub gain_jitter: f32,
    /// Additive white-noise standard deviation.
    pub noise: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        // Default: amplitude-domain augmentation only. Time rolls help
        // token/attention models markedly but the mid-window splice they
        // introduce destabilises deep temporal-conv stacks, so a fair
        // shared protocol leaves them off (opt in via `max_roll`).
        AugmentConfig {
            max_roll: 0,
            gain_jitter: 0.15,
            noise: 0.05,
        }
    }
}

impl AugmentConfig {
    /// Applies the augmentation in place to a gathered batch.
    pub fn apply(&self, bx: &mut Tensor, rng: &mut StdRng) {
        use rand::Rng;
        let (b, c, l) = (bx.dims()[0], bx.dims()[1], bx.dims()[2]);
        let mut scratch = vec![0.0f32; l];
        for i in 0..b {
            let roll = if self.max_roll > 0 {
                rng.gen_range(0..=self.max_roll.min(l - 1))
            } else {
                0
            };
            for ch in 0..c {
                let gain = 1.0 + rng.gen_range(-self.gain_jitter..=self.gain_jitter);
                let row = &mut bx.data_mut()[(i * c + ch) * l..(i * c + ch + 1) * l];
                if roll > 0 {
                    scratch[..l - roll].copy_from_slice(&row[roll..]);
                    scratch[l - roll..].copy_from_slice(&row[..roll]);
                    row.copy_from_slice(&scratch);
                }
                if self.gain_jitter > 0.0 || self.noise > 0.0 {
                    for v in row.iter_mut() {
                        let n: f32 = if self.noise > 0.0 {
                            rng.gen_range(-self.noise..=self.noise)
                        } else {
                            0.0
                        };
                        *v = *v * gain + n;
                    }
                }
            }
        }
    }
}

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Learning-rate schedule (evaluated per optimizer step / epoch).
    pub schedule: LrSchedule,
    /// Seed for the per-epoch shuffle.
    pub shuffle_seed: u64,
    /// Number of data-parallel shards per batch; `0` selects
    /// `min(available_parallelism, batch_size / 4)`.
    pub shards: usize,
    /// Optional global-norm gradient clipping.
    pub max_grad_norm: Option<f32>,
    /// Optional training-time augmentation.
    pub augment: Option<AugmentConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            epochs: 5,
            schedule: LrSchedule::Constant(1e-3),
            shuffle_seed: 0xB10F,
            shards: 0,
            max_grad_norm: Some(5.0),
            augment: Some(AugmentConfig::default()),
        }
    }
}

/// Loss/accuracy summary of one epoch (training metrics, computed on the
/// fly from the same forward passes used for gradients).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Mean training accuracy over the epoch.
    pub accuracy: f32,
}

/// Copies the windows selected by `indices` out of `[n, channels, len]`
/// into a dense batch tensor.
///
/// # Panics
///
/// Panics if `x` is not 3-D or an index is out of range.
pub fn gather_batch(x: &Tensor, indices: &[usize]) -> Tensor {
    assert_eq!(x.shape().rank(), 3, "gather_batch: x must be [N, C, L]");
    let (n, c, l) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let sample = c * l;
    let mut out = Tensor::zeros(&[indices.len(), c, l]);
    for (row, &i) in indices.iter().enumerate() {
        assert!(i < n, "gather_batch: index {i} out of range (n = {n})");
        out.data_mut()[row * sample..(row + 1) * sample]
            .copy_from_slice(&x.data()[i * sample..(i + 1) * sample]);
    }
    out
}

fn effective_shards(cfg_shards: usize, batch: usize) -> usize {
    let auto = bioformer_tensor::parallel::hardware_threads();
    let requested = if cfg_shards == 0 { auto } else { cfg_shards };
    requested.min((batch / 4).max(1))
}

/// Computes the full-batch gradient of `model` on `(bx, by)` using `shards`
/// data-parallel workers; gradients end up accumulated in `model`.
/// Returns `(summed loss, correct predictions)`.
fn batch_gradient<M: Model>(
    model: &mut M,
    bx: &Tensor,
    by: &[usize],
    shards: usize,
) -> (f32, usize) {
    let batch = by.len();
    if shards <= 1 {
        let logits = model.forward(bx, true);
        let (loss, dlogits) = cross_entropy(&logits, by);
        model.backward(&dlogits);
        let correct = logits
            .argmax_rows()
            .iter()
            .zip(by.iter())
            .filter(|(p, l)| p == l)
            .count();
        return (loss * batch as f32, correct);
    }

    let per = batch.div_ceil(shards);
    let (c, l) = (bx.dims()[1], bx.dims()[2]);
    let sample = c * l;
    let mut results: Vec<(Vec<Tensor>, f32, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < batch {
            let end = (start + per).min(batch);
            let mut worker = model.clone();
            worker.clear_cache();
            let shard_x = Tensor::from_vec(
                bx.data()[start * sample..end * sample].to_vec(),
                &[end - start, c, l],
            );
            let shard_y = &by[start..end];
            let scale = (end - start) as f32 / batch as f32;
            handles.push(scope.spawn(move || {
                let logits = worker.forward(&shard_x, true);
                let (loss, dlogits) = cross_entropy(&logits, shard_y);
                // Rescale so the summed shard gradients equal the full-batch
                // mean gradient.
                worker.backward(&dlogits.scale(scale));
                let correct = logits
                    .argmax_rows()
                    .iter()
                    .zip(shard_y.iter())
                    .filter(|(p, l)| p == l)
                    .count();
                (worker.grads(), loss * (end - start) as f32, correct)
            }));
            start = end;
        }
        for h in handles {
            results.push(h.join().expect("training shard panicked"));
        }
    });

    let mut loss_sum = 0.0f32;
    let mut correct = 0usize;
    for (grads, loss, corr) in &results {
        model.accumulate_grads(grads);
        loss_sum += loss;
        correct += corr;
    }
    (loss_sum, correct)
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
fn clip_grad_norm<M: Model>(model: &mut M, max_norm: f32) {
    let mut norm_sq = 0.0f32;
    model.visit_params(&mut |p| norm_sq += p.grad.norm_sq());
    let norm = norm_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad.scale_in_place(scale));
    }
}

/// Trains `model` for `cfg.epochs` epochs on windows `x` (`[N, C, L]`) with
/// integer `labels`, using Adam. Returns per-epoch training statistics.
///
/// # Panics
///
/// Panics if `x` and `labels` disagree in length or the dataset is empty.
pub fn train<M: Model>(
    model: &mut M,
    opt: &mut Adam,
    x: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> Vec<EpochStats> {
    let n = x.dims()[0];
    assert_eq!(n, labels.len(), "train: window/label count mismatch");
    assert!(n > 0, "train: empty dataset");
    let mut stats = Vec::with_capacity(cfg.epochs);
    let mut step = opt.steps() as usize;
    for epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng =
            StdRng::seed_from_u64(cfg.shuffle_seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9));
        order.shuffle(&mut rng);

        let mut loss_sum = 0.0f32;
        let mut correct = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let mut bx = gather_batch(x, chunk);
            if let Some(aug) = &cfg.augment {
                aug.apply(&mut bx, &mut rng);
            }
            let bx = bx;
            let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            let shards = effective_shards(cfg.shards, by.len());
            model.zero_grad();
            let (l, c) = batch_gradient(model, &bx, &by, shards);
            if let Some(max_norm) = cfg.max_grad_norm {
                clip_grad_norm(model, max_norm);
            }
            let lr = cfg.schedule.lr(step, epoch);
            opt.step(model, lr);
            step += 1;
            loss_sum += l;
            correct += c;
        }
        stats.push(EpochStats {
            loss: loss_sum / n as f32,
            accuracy: correct as f32 / n as f32,
        });
    }
    stats
}

/// Evaluates `model` on `(x, labels)`, returning `(mean loss, accuracy)`.
/// Runs shards of the evaluation set on cloned models across threads.
///
/// # Panics
///
/// Panics if `x` and `labels` disagree in length.
pub fn evaluate<M: Model>(
    model: &M,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> (f32, f32) {
    let n = x.dims()[0];
    assert_eq!(n, labels.len(), "evaluate: window/label count mismatch");
    if n == 0 {
        return (0.0, 0.0);
    }
    let threads = bioformer_tensor::parallel::hardware_threads()
        .min(n.div_ceil(batch_size.max(1)))
        .max(1);
    let per = n.div_ceil(threads);
    let (c, l) = (x.dims()[1], x.dims()[2]);
    let sample = c * l;

    let mut loss_sum = 0.0f32;
    let mut correct = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut start = 0usize;
        while start < n {
            let end = (start + per).min(n);
            let mut worker = model.clone();
            worker.clear_cache();
            let shard_labels = &labels[start..end];
            let shard_data = &x.data()[start * sample..end * sample];
            handles.push(scope.spawn(move || {
                let mut loss = 0.0f32;
                let mut corr = 0usize;
                let count = end - start;
                let mut off = 0usize;
                while off < count {
                    let bend = (off + batch_size).min(count);
                    let bx = Tensor::from_vec(
                        shard_data[off * sample..bend * sample].to_vec(),
                        &[bend - off, c, l],
                    );
                    let by = &shard_labels[off..bend];
                    let logits = worker.forward(&bx, false);
                    let (bl, _) = cross_entropy(&logits, by);
                    loss += bl * (bend - off) as f32;
                    corr += logits
                        .argmax_rows()
                        .iter()
                        .zip(by.iter())
                        .filter(|(p, l)| p == l)
                        .count();
                    off = bend;
                }
                (loss, corr)
            }));
            start = end;
        }
        for h in handles {
            let (l, cnt) = h.join().expect("evaluation shard panicked");
            loss_sum += l;
            correct += cnt;
        }
    });
    (loss_sum / n as f32, correct as f32 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::param::Param;
    use rand::Rng;

    #[derive(Clone)]
    struct Toy {
        lin: Linear,
    }

    impl Model for Toy {
        fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
            let b = x.dims()[0];
            let features = x.len() / b;
            self.lin.forward(&x.reshape(&[b, features]), train)
        }
        fn backward(&mut self, d: &Tensor) {
            let _ = self.lin.backward(d);
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.lin.visit_params(f);
        }
        fn clear_cache(&mut self) {
            self.lin.clear_cache();
        }
    }

    fn toy_dataset(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::zeros(&[n, 1, 6]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            labels.push(class);
            for j in 0..6 {
                let base = if j == class * 2 { 1.5 } else { 0.0 };
                x.data_mut()[i * 6 + j] = base + rng.gen_range(-0.4f32..0.4);
            }
        }
        (x, labels)
    }

    fn toy_model(seed: u64) -> Toy {
        let mut rng = StdRng::seed_from_u64(seed);
        Toy {
            lin: Linear::new("toy", 6, 3, &mut rng),
        }
    }

    #[test]
    fn gather_batch_selects_rows() {
        let x = Tensor::from_fn(&[4, 1, 2], |i| i as f32);
        let b = gather_batch(&x, &[2, 0]);
        assert_eq!(b.dims(), &[2, 1, 2]);
        assert_eq!(b.data(), &[4.0, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn training_learns_toy_problem() {
        let (x, labels) = toy_dataset(90, 0);
        let mut model = toy_model(1);
        let mut opt = Adam::default();
        let cfg = TrainConfig {
            batch_size: 16,
            epochs: 25,
            schedule: LrSchedule::Constant(0.02),
            shards: 1,
            augment: None,
            ..TrainConfig::default()
        };
        let stats = train(&mut model, &mut opt, &x, &labels, &cfg);
        let final_acc = stats.last().unwrap().accuracy;
        assert!(final_acc > 0.9, "final training accuracy {final_acc}");
        let (_, eval_acc) = evaluate(&model, &x, &labels, 32);
        assert!(eval_acc > 0.9, "eval accuracy {eval_acc}");
    }

    #[test]
    fn sharded_gradient_matches_single_shard() {
        let (x, labels) = toy_dataset(24, 2);
        let mut m1 = toy_model(3);
        let mut m2 = m1.clone();
        m1.zero_grad();
        m2.zero_grad();
        let by: Vec<usize> = labels.clone();
        let (l1, c1) = batch_gradient(&mut m1, &x, &by, 1);
        let (l2, c2) = batch_gradient(&mut m2, &x, &by, 4);
        assert!((l1 - l2).abs() < 1e-3, "loss {l1} vs {l2}");
        assert_eq!(c1, c2);
        let g1 = m1.grads();
        let g2 = m2.grads();
        for (a, b) in g1.iter().zip(g2.iter()) {
            assert!(a.allclose(b, 1e-4), "sharded gradient differs");
        }
    }

    #[test]
    fn training_is_deterministic_given_seeds() {
        let (x, labels) = toy_dataset(60, 4);
        let cfg = TrainConfig {
            batch_size: 16,
            epochs: 3,
            schedule: LrSchedule::Constant(0.01),
            shards: 1,
            augment: None,
            ..TrainConfig::default()
        };
        let mut m1 = toy_model(5);
        let mut o1 = Adam::default();
        let s1 = train(&mut m1, &mut o1, &x, &labels, &cfg);
        let mut m2 = toy_model(5);
        let mut o2 = Adam::default();
        let s2 = train(&mut m2, &mut o2, &x, &labels, &cfg);
        assert_eq!(s1.len(), s2.len());
        for (a, b) in s1.iter().zip(s2.iter()) {
            assert!((a.loss - b.loss).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let (x, labels) = toy_dataset(12, 6);
        let mut model = toy_model(7);
        model.zero_grad();
        // Huge synthetic gradient.
        let logits = model.forward(&x, true);
        let (_, d) = cross_entropy(&logits, &labels);
        model.backward(&d.scale(1e6));
        clip_grad_norm(&mut model, 1.0);
        let mut norm_sq = 0.0;
        model.visit_params(&mut |p| norm_sq += p.grad.norm_sq());
        assert!((norm_sq.sqrt() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn evaluate_empty_returns_zero() {
        let model = toy_model(8);
        let x = Tensor::zeros(&[0, 1, 6]);
        let (l, a) = evaluate(&model, &x, &[], 8);
        assert_eq!((l, a), (0.0, 0.0));
    }
}
