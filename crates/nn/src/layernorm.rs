//! LayerNorm layer with trainable affine parameters.

use crate::param::Param;
use bioformer_tensor::ops::{
    layernorm_backward, layernorm_forward, layernorm_rows_into, LayerNormCache,
};
use bioformer_tensor::{Tensor, TensorArena};

/// Row-wise layer normalisation `y = γ ⊙ x̂ + β` over `[rows, features]`.
///
/// `γ` initialises to ones and `β` to zeros. Inputs of shape
/// `[batch, seq, features]` are flattened to rows by the caller.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    features: usize,
    cache: Option<LayerNormCache>,
}

impl LayerNorm {
    /// Creates a LayerNorm over `features`-wide rows.
    pub fn new(name: &str, features: usize) -> Self {
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(&[features])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[features])),
            features,
            cache: None,
        }
    }

    /// Feature width.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Immutable access to `γ`.
    pub fn gamma(&self) -> &Param {
        &self.gamma
    }

    /// Immutable access to `β`.
    pub fn beta(&self) -> &Param {
        &self.beta
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        2 * self.features
    }

    /// Forward pass over `[rows, features]`.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from `features`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train {
            return self.forward_infer(x);
        }
        assert_eq!(
            x.dims()[1],
            self.features,
            "LayerNorm {}: width mismatch",
            self.gamma.name
        );
        let (y, cache) = layernorm_forward(x, &self.gamma.value, &self.beta.value);
        self.cache = Some(cache);
        y
    }

    /// Inference-only forward pass over `[rows, features]` through `&self`:
    /// same arithmetic as `forward(x, false)`, no cache writes, so one layer
    /// instance can serve concurrent readers without cloning.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from `features`.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.dims()[1],
            self.features,
            "LayerNorm {}: width mismatch",
            self.gamma.name
        );
        layernorm_forward(x, &self.gamma.value, &self.beta.value).0
    }

    /// Arena variant of [`LayerNorm::forward_infer`]: skips the backward
    /// cache entirely (no `x̂`/`1/σ` tensors) and draws the output from
    /// `arena`. Bit-identical to the cached forward.
    pub fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        assert_eq!(
            x.dims()[1],
            self.features,
            "LayerNorm {}: width mismatch",
            self.gamma.name
        );
        let mut out = arena.tensor(x.dims());
        self.infer_into(x.data(), out.data_mut());
        out
    }

    /// Slice-level inference entry: normalises `gamma`-width rows of `x`
    /// into `out` with no allocation (see
    /// [`bioformer_tensor::ops::layernorm_rows_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` is not a multiple of the feature width or the
    /// buffer lengths disagree.
    pub fn infer_into(&self, x: &[f32], out: &mut [f32]) {
        layernorm_rows_into(x, self.gamma.value.data(), self.beta.value.data(), out);
    }

    /// Backward pass: accumulates `dγ`, `dβ`, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .unwrap_or_else(|| panic!("LayerNorm {}: backward before forward", self.gamma.name));
        let (dx, dgamma, dbeta) = layernorm_backward(dy, &self.gamma.value, cache);
        self.gamma.accumulate(&dgamma);
        self.beta.accumulate(&dbeta);
        dx
    }

    /// Visits the layer's parameters in deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    /// Drops the forward cache.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn identity_initialisation_normalises() {
        let mut ln = LayerNorm::new("ln", 8);
        let x = filled(&[4, 8], 0).scale(10.0);
        let y = ln.forward(&x, false);
        for r in 0..4 {
            let m: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            assert!(m.abs() < 1e-4);
        }
    }

    /// infer == eval pin for the arena path (satellite: allocation-free
    /// layernorm must not change a single bit).
    #[test]
    fn arena_forward_matches_eval_bitwise() {
        let mut ln = LayerNorm::new("ln", 10);
        let mut rng = StdRng::seed_from_u64(5);
        for v in ln.gamma.value.data_mut() {
            *v = rng.gen_range(0.5..1.5);
        }
        for v in ln.beta.value.data_mut() {
            *v = rng.gen_range(-0.5..0.5);
        }
        let x = filled(&[6, 10], 6).scale(4.0);
        let eval = ln.forward(&x, false);
        let mut arena = TensorArena::new();
        let infer = ln.forward_infer_in(&x, &mut arena);
        assert!(infer.allclose(&eval, 0.0), "arena layernorm diverges");
    }

    #[test]
    fn gradcheck_through_layer() {
        let mut ln = LayerNorm::new("ln", 6);
        // Perturb affine params away from identity for a stronger check.
        let mut rng = StdRng::seed_from_u64(1);
        for v in ln.gamma.value.data_mut() {
            *v = rng.gen_range(0.5..1.5);
        }
        for v in ln.beta.value.data_mut() {
            *v = rng.gen_range(-0.5..0.5);
        }

        let x = filled(&[3, 6], 2);
        let _y = ln.forward(&x, true);
        let dy = filled(&[3, 6], 3);
        let dx = ln.backward(&dy);
        let dg = ln.gamma.grad.clone();

        let objective =
            |ln: &mut LayerNorm, x: &Tensor| -> f32 { ln.forward(x, false).mul(&dy).sum() };
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (objective(&mut ln, &xp) - objective(&mut ln, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}] fd={num} got={}",
                dx.data()[idx]
            );
        }
        for idx in 0..dg.len() {
            let orig = ln.gamma.value.data()[idx];
            ln.gamma.value.data_mut()[idx] = orig + eps;
            let fp = objective(&mut ln, &x);
            ln.gamma.value.data_mut()[idx] = orig - eps;
            let fm = objective(&mut ln, &x);
            ln.gamma.value.data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dg.data()[idx]).abs() < 1e-2,
                "dγ[{idx}] fd={num} got={}",
                dg.data()[idx]
            );
        }
    }
}
