//! Saving and loading model weights ("state dicts").

use crate::model::Model;
use bioformer_tensor::Tensor;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A named snapshot of every parameter tensor of a model, ordered by the
/// model's visit order. Serialises to JSON.
pub type StateDict = Vec<(String, Tensor)>;

/// Error returned by [`load_state_dict`] and the file helpers.
#[derive(Debug)]
pub enum LoadStateError {
    /// A parameter present in the model is missing from the dict.
    Missing(String),
    /// Shape mismatch between model parameter and stored tensor.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape expected by the model.
        expected: Vec<usize>,
        /// Shape found in the state dict.
        found: Vec<usize>,
    },
    /// I/O failure while reading or writing a file.
    Io(std::io::Error),
    /// JSON (de)serialisation failure.
    Json(serde_json::Error),
}

impl fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadStateError::Missing(name) => write!(f, "parameter {name} missing from state dict"),
            LoadStateError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter {name} has shape {found:?}, model expects {expected:?}"
            ),
            LoadStateError::Io(e) => write!(f, "i/o error: {e}"),
            LoadStateError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for LoadStateError {}

impl From<std::io::Error> for LoadStateError {
    fn from(e: std::io::Error) -> Self {
        LoadStateError::Io(e)
    }
}

impl From<serde_json::Error> for LoadStateError {
    fn from(e: serde_json::Error) -> Self {
        LoadStateError::Json(e)
    }
}

/// Extracts a snapshot of all parameters.
pub fn state_dict<M: Model>(model: &mut M) -> StateDict {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.push((p.name.clone(), p.value.clone())));
    out
}

/// Loads parameter values by name.
///
/// Extra entries in `dict` are ignored; this permits loading a pre-trained
/// backbone into a model whose classifier head was re-initialised (the
/// paper's fine-tuning step does the opposite — it keeps all weights — but
/// the protocol code also uses partial loads for ablations).
///
/// # Errors
///
/// Returns an error if a model parameter is missing from the dict or the
/// shapes disagree.
pub fn load_state_dict<M: Model>(model: &mut M, dict: &StateDict) -> Result<(), LoadStateError> {
    let map: BTreeMap<&str, &Tensor> = dict.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut err: Option<LoadStateError> = None;
    model.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        match map.get(p.name.as_str()) {
            None => err = Some(LoadStateError::Missing(p.name.clone())),
            Some(t) => {
                if t.dims() != p.value.dims() {
                    err = Some(LoadStateError::ShapeMismatch {
                        name: p.name.clone(),
                        expected: p.value.dims().to_vec(),
                        found: t.dims().to_vec(),
                    });
                } else {
                    p.value = (*t).clone();
                }
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Serialises a state dict to a JSON file.
///
/// # Errors
///
/// Returns an error on I/O or serialisation failure.
pub fn save_json(dict: &StateDict, path: impl AsRef<Path>) -> Result<(), LoadStateError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(std::io::BufWriter::new(file), dict)?;
    Ok(())
}

/// Reads a state dict from a JSON file.
///
/// # Errors
///
/// Returns an error on I/O or deserialisation failure.
pub fn read_json(path: impl AsRef<Path>) -> Result<StateDict, LoadStateError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(std::io::BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Clone)]
    struct Toy {
        a: Linear,
        b: Linear,
    }

    impl Model for Toy {
        fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
            let h = self.a.forward(x, train);
            self.b.forward(&h, train)
        }
        fn backward(&mut self, d: &Tensor) {
            let d = self.b.backward(d);
            let _ = self.a.backward(&d);
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.a.visit_params(f);
            self.b.visit_params(f);
        }
    }

    fn toy(seed: u64) -> Toy {
        let mut rng = StdRng::seed_from_u64(seed);
        Toy {
            a: Linear::new("a", 3, 4, &mut rng),
            b: Linear::new("b", 4, 2, &mut rng),
        }
    }

    #[test]
    fn roundtrip_restores_weights() {
        let mut src = toy(1);
        let mut dst = toy(2);
        let x = Tensor::ones(&[2, 3]);
        let before_src = src.forward(&x, false);
        let before_dst = dst.forward(&x, false);
        assert!(!before_src.allclose(&before_dst, 1e-6));

        let dict = state_dict(&mut src);
        load_state_dict(&mut dst, &dict).unwrap();
        let after_dst = dst.forward(&x, false);
        assert!(after_dst.allclose(&before_src, 1e-6));
    }

    #[test]
    fn missing_param_is_error() {
        let mut m = toy(3);
        let mut dict = state_dict(&mut m);
        dict.retain(|(n, _)| !n.starts_with("b"));
        let err = load_state_dict(&mut m, &dict).unwrap_err();
        assert!(matches!(err, LoadStateError::Missing(_)));
    }

    #[test]
    fn shape_mismatch_is_error() {
        let mut m = toy(4);
        let mut dict = state_dict(&mut m);
        dict[0].1 = Tensor::zeros(&[1, 1]);
        let err = load_state_dict(&mut m, &dict).unwrap_err();
        assert!(matches!(err, LoadStateError::ShapeMismatch { .. }));
        assert!(err.to_string().contains("shape"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bioformer_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");
        let mut m = toy(5);
        let dict = state_dict(&mut m);
        save_json(&dict, &path).unwrap();
        let loaded = read_json(&path).unwrap();
        assert_eq!(loaded.len(), dict.len());
        for ((n1, t1), (n2, t2)) in dict.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert!(t1.allclose(t2, 0.0));
        }
        std::fs::remove_file(&path).ok();
    }
}
