//! Saving and loading model weights ("state dicts").

use crate::model::Model;
use bioformer_tensor::Tensor;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A named snapshot of every parameter tensor of a model, ordered by the
/// model's visit order. Serialises to JSON.
pub type StateDict = Vec<(String, Tensor)>;

/// Error returned by [`load_state_dict`] and the file helpers.
#[derive(Debug)]
pub enum LoadStateError {
    /// A parameter present in the model is missing from the dict.
    Missing(String),
    /// Shape mismatch between model parameter and stored tensor.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape expected by the model.
        expected: Vec<usize>,
        /// Shape found in the state dict.
        found: Vec<usize>,
    },
    /// I/O failure while reading or writing a file.
    Io(std::io::Error),
    /// JSON (de)serialisation failure.
    Json(String),
}

impl fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadStateError::Missing(name) => write!(f, "parameter {name} missing from state dict"),
            LoadStateError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "parameter {name} has shape {found:?}, model expects {expected:?}"
            ),
            LoadStateError::Io(e) => write!(f, "i/o error: {e}"),
            LoadStateError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for LoadStateError {}

impl From<std::io::Error> for LoadStateError {
    fn from(e: std::io::Error) -> Self {
        LoadStateError::Io(e)
    }
}

impl From<json::ParseError> for LoadStateError {
    fn from(e: json::ParseError) -> Self {
        LoadStateError::Json(e.0)
    }
}

/// Extracts a snapshot of all parameters.
pub fn state_dict<M: Model>(model: &mut M) -> StateDict {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.push((p.name.clone(), p.value.clone())));
    out
}

/// Loads parameter values by name.
///
/// Extra entries in `dict` are ignored; this permits loading a pre-trained
/// backbone into a model whose classifier head was re-initialised (the
/// paper's fine-tuning step does the opposite — it keeps all weights — but
/// the protocol code also uses partial loads for ablations).
///
/// # Errors
///
/// Returns an error if a model parameter is missing from the dict or the
/// shapes disagree.
pub fn load_state_dict<M: Model>(model: &mut M, dict: &StateDict) -> Result<(), LoadStateError> {
    let map: BTreeMap<&str, &Tensor> = dict.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut err: Option<LoadStateError> = None;
    model.visit_params(&mut |p| {
        if err.is_some() {
            return;
        }
        match map.get(p.name.as_str()) {
            None => err = Some(LoadStateError::Missing(p.name.clone())),
            Some(t) => {
                if t.dims() != p.value.dims() {
                    err = Some(LoadStateError::ShapeMismatch {
                        name: p.name.clone(),
                        expected: p.value.dims().to_vec(),
                        found: t.dims().to_vec(),
                    });
                } else {
                    p.value = (*t).clone();
                }
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Serialises a state dict to a JSON file.
///
/// The format is an array of `{"name": .., "dims": [..], "data": [..]}`
/// objects in visit order. Floats are written in shortest-roundtrip form,
/// so [`read_json`] restores values bit-exactly (non-finite values map to
/// `null`, mirroring `serde_json`).
///
/// # Errors
///
/// Returns an error on I/O or serialisation failure.
pub fn save_json(dict: &StateDict, path: impl AsRef<Path>) -> Result<(), LoadStateError> {
    let mut out = String::from("[");
    for (i, (name, tensor)) in dict.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\": ");
        json::write_string(&mut out, name);
        out.push_str(", \"dims\": [");
        for (j, d) in tensor.dims().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&d.to_string());
        }
        out.push_str("], \"data\": [");
        for (j, &v) in tensor.data().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_f32(&mut out, v);
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n");
    std::fs::write(path, out)?;
    Ok(())
}

/// Reads a state dict written by [`save_json`].
///
/// # Errors
///
/// Returns an error on I/O or deserialisation failure.
pub fn read_json(path: impl AsRef<Path>) -> Result<StateDict, LoadStateError> {
    let text = std::fs::read_to_string(path)?;
    let entries = json::parse_state_dict(&text)?;
    let mut dict = StateDict::new();
    for (name, dims, data) in entries {
        let tensor = Tensor::try_from_vec(data, &dims)
            .map_err(|e| LoadStateError::Json(format!("entry {name}: {e:?}")))?;
        dict.push((name, tensor));
    }
    Ok(dict)
}

/// Minimal JSON reader/writer for the state-dict format — the build
/// environment is offline, so this replaces `serde_json` for the one
/// document shape this module produces.
mod json {
    use std::fmt::Write as _;

    /// Parse failure with a human-readable message.
    #[derive(Debug)]
    pub struct ParseError(pub String);

    /// One decoded state-dict entry: name, dims, row-major data.
    type RawEntry = (String, Vec<usize>, Vec<f32>);

    /// Writes a JSON string literal (escaping the mandatory characters).
    pub fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Writes an `f32` in shortest-roundtrip decimal form; non-finite
    /// values become `null`.
    pub fn write_f32(out: &mut String, v: f32) {
        if v.is_finite() {
            let _ = write!(out, "{v:?}");
        } else {
            out.push_str("null");
        }
    }

    /// Parses the top-level state-dict document.
    pub fn parse_state_dict(text: &str) -> Result<Vec<RawEntry>, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'[')?;
        let mut entries = Vec::new();
        p.skip_ws();
        if !p.try_consume(b']') {
            loop {
                entries.push(p.parse_entry()?);
                p.skip_ws();
                if p.try_consume(b']') {
                    break;
                }
                p.expect(b',')?;
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(entries)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn error(&self, msg: &str) -> ParseError {
            ParseError(format!("{msg} at byte {}", self.pos))
        }

        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ParseError> {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(&format!("expected '{}'", b as char)))
            }
        }

        fn try_consume(&mut self, b: u8) -> bool {
            self.skip_ws();
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// Parses one `{"name": .., "dims": [..], "data": [..]}` object,
        /// in any key order.
        fn parse_entry(&mut self) -> Result<RawEntry, ParseError> {
            self.expect(b'{')?;
            let (mut name, mut dims, mut data) = (None, None, None);
            loop {
                let key = self.parse_string()?;
                self.expect(b':')?;
                match key.as_str() {
                    "name" => name = Some(self.parse_string()?),
                    "dims" => dims = Some(self.parse_usize_array()?),
                    "data" => data = Some(self.parse_f32_array()?),
                    other => return Err(self.error(&format!("unknown key {other:?}"))),
                }
                if self.try_consume(b'}') {
                    break;
                }
                self.expect(b',')?;
            }
            match (name, dims, data) {
                (Some(n), Some(d), Some(v)) => Ok((n, d, v)),
                _ => Err(self.error("entry missing name/dims/data")),
            }
        }

        fn parse_string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err(self.error("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err(self.error("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let end = self.pos + 4;
                                let hex = self
                                    .bytes
                                    .get(self.pos..end)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.error("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.error("bad \\u escape"))?;
                                let c = char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?;
                                out.push(c);
                                self.pos = end;
                            }
                            _ => return Err(self.error("unknown escape")),
                        }
                    }
                    _ => {
                        // Multi-byte UTF-8: copy the full character.
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        let s = self
                            .bytes
                            .get(start..end)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| self.error("invalid utf-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }

        fn parse_usize_array(&mut self) -> Result<Vec<usize>, ParseError> {
            self.parse_array(|tok, p| {
                tok.parse::<usize>()
                    .map_err(|_| p.error(&format!("bad dimension {tok:?}")))
            })
        }

        fn parse_f32_array(&mut self) -> Result<Vec<f32>, ParseError> {
            self.parse_array(|tok, p| {
                if tok == "null" {
                    Ok(f32::NAN)
                } else {
                    tok.parse::<f32>()
                        .map_err(|_| p.error(&format!("bad number {tok:?}")))
                }
            })
        }

        fn parse_array<T>(
            &mut self,
            parse_token: impl Fn(&str, &Parser<'_>) -> Result<T, ParseError>,
        ) -> Result<Vec<T>, ParseError> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            if self.try_consume(b']') {
                return Ok(out);
            }
            loop {
                self.skip_ws();
                let start = self.pos;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b == b',' || b == b']' || b.is_ascii_whitespace() {
                        break;
                    }
                    self.pos += 1;
                }
                let tok = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in number"))?;
                out.push(parse_token(tok, self)?);
                if self.try_consume(b']') {
                    return Ok(out);
                }
                self.expect(b',')?;
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::param::Param;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Clone)]
    struct Toy {
        a: Linear,
        b: Linear,
    }

    impl Model for Toy {
        fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
            let h = self.a.forward(x, train);
            self.b.forward(&h, train)
        }
        fn backward(&mut self, d: &Tensor) {
            let d = self.b.backward(d);
            let _ = self.a.backward(&d);
        }
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            self.a.visit_params(f);
            self.b.visit_params(f);
        }
    }

    fn toy(seed: u64) -> Toy {
        let mut rng = StdRng::seed_from_u64(seed);
        Toy {
            a: Linear::new("a", 3, 4, &mut rng),
            b: Linear::new("b", 4, 2, &mut rng),
        }
    }

    #[test]
    fn roundtrip_restores_weights() {
        let mut src = toy(1);
        let mut dst = toy(2);
        let x = Tensor::ones(&[2, 3]);
        let before_src = src.forward(&x, false);
        let before_dst = dst.forward(&x, false);
        assert!(!before_src.allclose(&before_dst, 1e-6));

        let dict = state_dict(&mut src);
        load_state_dict(&mut dst, &dict).unwrap();
        let after_dst = dst.forward(&x, false);
        assert!(after_dst.allclose(&before_src, 1e-6));
    }

    #[test]
    fn missing_param_is_error() {
        let mut m = toy(3);
        let mut dict = state_dict(&mut m);
        dict.retain(|(n, _)| !n.starts_with("b"));
        let err = load_state_dict(&mut m, &dict).unwrap_err();
        assert!(matches!(err, LoadStateError::Missing(_)));
    }

    #[test]
    fn shape_mismatch_is_error() {
        let mut m = toy(4);
        let mut dict = state_dict(&mut m);
        dict[0].1 = Tensor::zeros(&[1, 1]);
        let err = load_state_dict(&mut m, &dict).unwrap_err();
        assert!(matches!(err, LoadStateError::ShapeMismatch { .. }));
        assert!(err.to_string().contains("shape"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("bioformer_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");
        let mut m = toy(5);
        let dict = state_dict(&mut m);
        save_json(&dict, &path).unwrap();
        let loaded = read_json(&path).unwrap();
        assert_eq!(loaded.len(), dict.len());
        for ((n1, t1), (n2, t2)) in dict.iter().zip(loaded.iter()) {
            assert_eq!(n1, n2);
            assert!(t1.allclose(t2, 0.0));
        }
        std::fs::remove_file(&path).ok();
    }
}
