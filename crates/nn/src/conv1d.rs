//! Batched 1-D convolution layer.

use crate::init;
use crate::param::Param;
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::conv::{
    conv1d_backward_input, conv1d_backward_params_cols, conv1d_forward_cols, im2col, im2col_into,
    Conv1dSpec,
};
use bioformer_tensor::pack::{Epilogue, PackedB};
use bioformer_tensor::{Tensor, TensorArena};
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// A batched 1-D convolution over `[batch, in_channels, length]` tensors.
///
/// The Bioformer front-end uses this with `stride == kernel` (non-overlapping
/// patch embedding, paper §III-A); TEMPONet uses dilated variants.
///
/// The inference path lowers each sample to im2col + packed GEMM with the
/// flattened `[out, in·kernel]` weight packed once and cached (same
/// freshness rule as [`crate::Linear`]: `&mut self` entry points
/// invalidate, `&self` paths rebuild lazily).
#[derive(Debug, Clone)]
pub struct Conv1d {
    weight: Param,
    bias: Param,
    spec: Conv1dSpec,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    /// Per-sample im2col matrices cached during a training forward pass
    /// (reused for both weight and input gradients) plus the input length.
    cached_cols: Option<(Vec<Tensor>, usize)>,
    /// Lazily-built packed image of the flattened weight for inference.
    packed: OnceLock<PackedB>,
    /// Compute backend the inference path routes its GEMMs through.
    backend: Arc<dyn ComputeBackend>,
}

impl Conv1d {
    /// Creates a Kaiming-initialised convolution.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv1dSpec,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_channels * kernel;
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_uniform(rng, &[out_channels, in_channels, kernel], fan_in),
        );
        let bias = Param::new(format!("{name}.bias"), Tensor::zeros(&[out_channels]));
        Conv1d {
            weight,
            bias,
            spec,
            in_channels,
            out_channels,
            kernel,
            cached_cols: None,
            packed: OnceLock::new(),
            backend: default_backend(),
        }
    }

    /// Installs a compute backend; the packed weight is re-built under the
    /// new backend's plan on next use.
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.packed.take();
        self.backend = backend;
    }

    /// The compute backend the inference path routes through.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// The convolution hyper-parameters.
    pub fn spec(&self) -> Conv1dSpec {
        self.spec
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Immutable access to the weight parameter (`[out, in, kernel]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Immutable access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Output length for an input of `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if the input is shorter than the dilated kernel extent.
    pub fn out_len(&self, len: usize) -> usize {
        self.spec
            .out_len(len, self.kernel)
            .unwrap_or_else(|| panic!("Conv1d: input length {len} too short"))
    }

    /// Forward pass over `[batch, in_channels, length]`, returning
    /// `[batch, out_channels, out_length]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // Weights may have been mutated since the last call through this
        // `&mut` entry point; drop the packed cache (rebuilt lazily).
        self.packed.take();
        if !train {
            return self.forward_infer(x);
        }
        assert_eq!(x.shape().rank(), 3, "Conv1d: input must be [B, C, L]");
        let (b, c, len) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(c, self.in_channels, "Conv1d: channel mismatch");
        let out_len = self.out_len(len);
        let mut y = Tensor::zeros(&[b, self.out_channels, out_len]);
        let sample = c * len;
        let out_sample = self.out_channels * out_len;
        let mut cols_cache = Vec::with_capacity(b);
        for i in 0..b {
            let xi = Tensor::from_vec(x.data()[i * sample..(i + 1) * sample].to_vec(), &[c, len]);
            let cols = im2col(&xi, self.kernel, self.spec);
            let yi = conv1d_forward_cols(&cols, &self.weight.value, &self.bias.value);
            y.data_mut()[i * out_sample..(i + 1) * out_sample].copy_from_slice(yi.data());
            cols_cache.push(cols);
        }
        self.cached_cols = Some((cols_cache, len));
        y
    }

    /// Inference-only forward over `[batch, in_channels, length]` through
    /// `&self`: same arithmetic as `forward(x, false)`, no cache writes, so
    /// one layer instance can serve concurrent readers without cloning.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        self.forward_infer_in(x, &mut TensorArena::new())
    }

    /// The packed image of the flattened `[out, in·kernel]` weight, built
    /// on first use after any invalidation.
    fn packed_weight(&self) -> &PackedB {
        self.packed.get_or_init(|| {
            self.backend.pack_weight(
                self.weight.value.data(),
                self.out_channels,
                self.in_channels * self.kernel,
            )
        })
    }

    /// Arena variant of [`Conv1d::forward_infer`]: each sample is lowered
    /// into an arena im2col buffer and multiplied against the cached packed
    /// weight with the bias fused into the GEMM store; the `[out_len, out]`
    /// product is then transposed into the `[out, out_len]` output layout.
    /// Bit-identical to the training-path arithmetic.
    ///
    /// The returned tensor is arena-owned; recycle it when consumed.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn forward_infer_in(&self, x: &Tensor, arena: &mut TensorArena) -> Tensor {
        assert_eq!(x.shape().rank(), 3, "Conv1d: input must be [B, C, L]");
        let (b, c, len) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        assert_eq!(c, self.in_channels, "Conv1d: channel mismatch");
        let out_len = self.out_len(len);
        let (c_out, ck) = (self.out_channels, c * self.kernel);
        let mut y = arena.tensor(&[b, c_out, out_len]);
        let sample = c * len;
        let out_sample = c_out * out_len;
        let mut cols = arena.alloc(out_len * ck);
        let mut yt = arena.alloc(out_len * c_out);
        for i in 0..b {
            let xi = &x.data()[i * sample..(i + 1) * sample];
            im2col_into(xi, c, len, self.kernel, self.spec, &mut cols);
            self.backend.gemm(
                &cols,
                out_len,
                self.packed_weight(),
                &mut yt,
                Epilogue::Bias(self.bias.value.data()),
            );
            // Transpose [out_len, out] → the conv layout [out, out_len].
            let yi = &mut y.data_mut()[i * out_sample..(i + 1) * out_sample];
            for ot in 0..out_len {
                for oc in 0..c_out {
                    yi[oc * out_len + ot] = yt[ot * c_out + oc];
                }
            }
        }
        arena.recycle_vec(cols);
        arena.recycle_vec(yt);
        y
    }

    /// Backward pass: accumulates weight/bias gradients, returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (cols_cache, len) = self
            .cached_cols
            .as_ref()
            .unwrap_or_else(|| panic!("Conv1d {}: backward before forward", self.weight.name));
        let len = *len;
        let b = cols_cache.len();
        let c = self.in_channels;
        let (out_c, out_len) = (dy.dims()[1], dy.dims()[2]);
        assert_eq!(dy.dims()[0], b, "Conv1d backward: batch mismatch");
        assert_eq!(
            out_c, self.out_channels,
            "Conv1d backward: channel mismatch"
        );
        let mut dx = Tensor::zeros(&[b, c, len]);
        let sample = c * len;
        let out_sample = out_c * out_len;
        for (i, cols) in cols_cache.iter().enumerate() {
            let dyi = Tensor::from_vec(
                dy.data()[i * out_sample..(i + 1) * out_sample].to_vec(),
                &[out_c, out_len],
            );
            let dxi = conv1d_backward_input(&dyi, &self.weight.value, self.spec, len);
            let (dw, db) = conv1d_backward_params_cols(&dyi, cols, c, self.kernel);
            self.weight.accumulate(&dw);
            self.bias.accumulate(&db);
            dx.data_mut()[i * sample..(i + 1) * sample].copy_from_slice(dxi.data());
        }
        dx
    }

    /// Visits the layer's parameters in deterministic order. The visitor
    /// may rewrite the weights, so the packed cache is invalidated.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.packed.take();
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Drops the forward cache.
    pub fn clear_cache(&mut self) {
        self.cached_cols = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_patch_embedding_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        // Paper config: 14 channels, 300 samples, filter 10 → 30 tokens of 64.
        let mut conv = Conv1d::new("patch", 14, 64, 10, Conv1dSpec::patch(10), &mut rng);
        let x = filled(&[2, 14, 300], 1);
        let y = conv.forward(&x, false);
        assert_eq!(y.dims(), &[2, 64, 30]);
    }

    #[test]
    fn batch_samples_independent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv1d::new("c", 2, 3, 2, Conv1dSpec::patch(2), &mut rng);
        let a = filled(&[1, 2, 6], 3);
        let b = filled(&[1, 2, 6], 4);
        let mut both = Tensor::zeros(&[2, 2, 6]);
        both.data_mut()[..12].copy_from_slice(a.data());
        both.data_mut()[12..].copy_from_slice(b.data());
        let ya = conv.forward(&a, false);
        let yb = conv.forward(&b, false);
        let yboth = conv.forward(&both, false);
        assert_eq!(&yboth.data()[..ya.len()], ya.data());
        assert_eq!(&yboth.data()[ya.len()..], yb.data());
    }

    #[test]
    fn gradcheck_batched() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut conv = Conv1d::new(
            "c",
            2,
            3,
            3,
            Conv1dSpec {
                stride: 2,
                padding: 1,
                dilation: 1,
            },
            &mut rng,
        );
        let x = filled(&[2, 2, 8], 6);
        let y = conv.forward(&x, true);
        let dy = filled(y.dims(), 7);
        let dx = conv.backward(&dy);
        let dw = conv.weight.grad.clone();

        let objective =
            |conv: &mut Conv1d, x: &Tensor| -> f32 { conv.forward(x, false).mul(&dy).sum() };
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (objective(&mut conv, &xp) - objective(&mut conv, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}] fd={num} got={}",
                dx.data()[idx]
            );
        }
        for idx in 0..dw.len() {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let fp = objective(&mut conv, &x);
            conv.weight.value.data_mut()[idx] = orig - eps;
            let fm = objective(&mut conv, &x);
            conv.weight.value.data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 1e-2,
                "dW[{idx}] fd={num} got={}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn param_count_matches_paper_patch_layer() {
        let mut rng = StdRng::seed_from_u64(9);
        // filter=10: 14·10·64 + 64 = 9024 params (paper's front-end)
        let conv = Conv1d::new("patch", 14, 64, 10, Conv1dSpec::patch(10), &mut rng);
        assert_eq!(conv.num_params(), 9024);
    }
}
