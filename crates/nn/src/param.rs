//! Trainable parameters: value + accumulated gradient.

use bioformer_tensor::Tensor;

/// A trainable tensor with its accumulated gradient.
///
/// Layers expose their parameters through [`crate::Model::visit_params`];
/// optimizers consume `grad` and update `value`. Gradients accumulate across
/// backward calls until [`Param::zero_grad`] is invoked (mirroring PyTorch
/// semantics, which the trainer relies on for gradient accumulation across
/// data-parallel shards).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Stable identifier used for serialization and debugging
    /// (e.g. `"patch_embed.weight"`).
    pub name: String,
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient, always the same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate(&mut self, g: &Tensor) {
        self.grad.add_assign(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 3]));
        assert_eq!(p.name, "w");
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new("b", Tensor::zeros(&[2]));
        p.accumulate(&Tensor::ones(&[2]));
        p.accumulate(&Tensor::ones(&[2]));
        assert_eq!(p.grad.data(), &[2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn accumulate_shape_mismatch_panics() {
        let mut p = Param::new("b", Tensor::zeros(&[2]));
        p.accumulate(&Tensor::ones(&[3]));
    }
}
