//! Fully-connected (affine) layer.

use crate::init;
use crate::param::Param;
use bioformer_tensor::Tensor;
use rand::Rng;

/// An affine layer `y = x · Wᵀ + b` with weight layout `[out, in]`
/// (PyTorch convention, so int8 export in `bioformer-quant` maps 1:1).
///
/// Inputs are 2-D `[rows, in_features]`; the layer is shape-agnostic in the
/// row count, so callers flatten `[batch, seq, features]` to
/// `[batch·seq, features]` before applying it.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Xavier-initialised linear layer.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::xavier_uniform(rng, &[out_features, in_features], in_features, out_features),
        );
        let bias = Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features]));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Immutable access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass. When `train` is set, the input is cached for
    /// [`Linear::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[rows, in_features]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.forward_infer(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    /// Inference-only forward pass over shared state: identical arithmetic
    /// to `forward(x, false)` but through `&self`, so a single layer
    /// instance can serve concurrent readers without cloning.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[rows, in_features]`.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.dims()[1],
            self.in_features,
            "Linear {}: input width {} != {}",
            self.weight.name,
            x.dims()[1],
            self.in_features
        );
        let mut y = x.matmul_nt(&self.weight.value);
        let rows = y.dims()[0];
        let cols = self.out_features;
        for r in 0..rows {
            let row = &mut y.data_mut()[r * cols..(r + 1) * cols];
            for (v, b) in row.iter_mut().zip(self.bias.value.data().iter()) {
                *v += b;
            }
        }
        y
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .unwrap_or_else(|| panic!("Linear {}: backward before forward", self.weight.name));
        // dW[out,in] = dyᵀ[out,rows]·x[rows,in]
        let dw = dy.matmul_tn(x);
        self.weight.accumulate(&dw);
        // db = column sums of dy
        let (rows, cols) = (dy.dims()[0], dy.dims()[1]);
        let mut db = Tensor::zeros(&[cols]);
        for r in 0..rows {
            for c in 0..cols {
                db.data_mut()[c] += dy.data()[r * cols + c];
            }
        }
        self.bias.accumulate(&db);
        // dx = dy · W
        dy.matmul(&self.weight.value)
    }

    /// Visits the layer's parameters in deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Drops the forward cache (used when cloning models for inference).
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new("l", 4, 3, &mut rng);
        let x = Tensor::zeros(&[5, 4]);
        let y = l.forward(&x, false);
        assert_eq!(y.dims(), &[5, 3]);
        // zero input → output equals bias (zero-initialised here)
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("l", 6, 4, &mut rng);
        let x = filled(&[3, 6], 2);
        let dy = filled(&[3, 4], 3);

        let _ = l.forward(&x, true);
        let dx = l.backward(&dy);

        let objective = |l: &mut Linear, x: &Tensor| -> f32 { l.forward(x, false).mul(&dy).sum() };

        let eps = 1e-3;
        // dx check
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (objective(&mut l, &xp) - objective(&mut l, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}] fd={num} got={}",
                dx.data()[idx]
            );
        }
        // dW check
        let dw = l.weight.grad.clone();
        for idx in 0..dw.len() {
            let orig = l.weight.value.data()[idx];
            l.weight.value.data_mut()[idx] = orig + eps;
            let fp = objective(&mut l, &x);
            l.weight.value.data_mut()[idx] = orig - eps;
            let fm = objective(&mut l, &x);
            l.weight.value.data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 1e-2,
                "dW[{idx}] fd={num} got={}",
                dw.data()[idx]
            );
        }
        // db check
        let db = l.bias.grad.clone();
        for idx in 0..db.len() {
            let orig = l.bias.value.data()[idx];
            l.bias.value.data_mut()[idx] = orig + eps;
            let fp = objective(&mut l, &x);
            l.bias.value.data_mut()[idx] = orig - eps;
            let fm = objective(&mut l, &x);
            l.bias.value.data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - db.data()[idx]).abs() < 1e-2,
                "db[{idx}] fd={num} got={}",
                db.data()[idx]
            );
        }
    }

    #[test]
    fn grads_accumulate_across_batches() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Linear::new("l", 2, 2, &mut rng);
        let x = filled(&[2, 2], 5);
        let dy = filled(&[2, 2], 6);
        let _ = l.forward(&x, true);
        let _ = l.backward(&dy);
        let g1 = l.weight.grad.clone();
        let _ = l.forward(&x, true);
        let _ = l.backward(&dy);
        assert!(l.weight.grad.allclose(&g1.scale(2.0), 1e-5));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = Linear::new("l", 64, 256, &mut rng);
        assert_eq!(l.num_params(), 64 * 256 + 256);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut l = Linear::new("l", 2, 2, &mut rng);
        l.backward(&Tensor::zeros(&[1, 2]));
    }
}
