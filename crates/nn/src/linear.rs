//! Fully-connected (affine) layer.

use crate::init;
use crate::param::Param;
use bioformer_tensor::backend::{default_backend, ComputeBackend};
use bioformer_tensor::pack::{Epilogue, PackedB};
use bioformer_tensor::{Tensor, TensorArena};
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// An activation fused into a [`Linear`] forward's GEMM epilogue: the
/// nonlinearity is applied as each output tile is stored, instead of in a
/// separate pass over the activations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedActivation {
    /// Plain affine output.
    None,
    /// tanh-approximated GELU (transformer FFN).
    Gelu,
    /// (Leaky) ReLU with the given negative-side slope.
    Relu(f32),
}

/// An affine layer `y = x · Wᵀ + b` with weight layout `[out, in]`
/// (PyTorch convention, so int8 export in `bioformer-quant` maps 1:1).
///
/// Inputs are 2-D `[rows, in_features]`; the layer is shape-agnostic in the
/// row count, so callers flatten `[batch, seq, features]` to
/// `[batch·seq, features]` before applying it.
///
/// # Weight packing
///
/// The inference path runs through the layer's
/// [`ComputeBackend`] (the process default unless
/// [`Linear::set_backend`] installs another — e.g. an autotuned one), and
/// the packed image of `W` is cached inside
/// the layer so serving packs each weight matrix **once**, not per call.
/// The cache follows a simple freshness rule: any `&mut self` entry point
/// that could have observed a weight mutation ([`Linear::forward`],
/// [`Linear::visit_params`]) drops it, and the `&self` inference paths
/// rebuild it lazily. External code can only mutate weights through
/// `visit_params` (the optimizer and the state-dict loader both do), so a
/// shared `&self` instance behind an `Arc` always sees a fresh pack.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    /// Lazily-built packed image of `weight` for the inference GEMM.
    packed: OnceLock<PackedB>,
    /// The compute backend every GEMM of this layer routes through.
    backend: Arc<dyn ComputeBackend>,
}

impl Linear {
    /// Creates a Xavier-initialised linear layer.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::xavier_uniform(rng, &[out_features, in_features], in_features, out_features),
        );
        let bias = Param::new(format!("{name}.bias"), Tensor::zeros(&[out_features]));
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
            packed: OnceLock::new(),
            backend: default_backend(),
        }
    }

    /// Installs a compute backend for this layer's GEMMs, dropping the
    /// packed-weight cache (the new backend may pack at a different panel
    /// width).
    pub fn set_backend(&mut self, backend: Arc<dyn ComputeBackend>) {
        self.packed.take();
        self.backend = backend;
    }

    /// The compute backend this layer routes through.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable access to the weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Immutable access to the bias parameter.
    pub fn bias(&self) -> &Param {
        &self.bias
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// The packed image of the weight matrix, built on first use after any
    /// invalidation. `&self`-safe and thread-safe (`OnceLock` arbitrates
    /// concurrent first calls).
    fn packed_weight(&self) -> &PackedB {
        self.packed.get_or_init(|| {
            self.backend.pack_weight(
                self.weight.value.data(),
                self.out_features,
                self.in_features,
            )
        })
    }

    /// Forward pass. When `train` is set, the input is cached for
    /// [`Linear::backward`].
    ///
    /// Taking `&mut self`, this entry point assumes the weights may have
    /// been mutated since the last call (gradient steps, direct pokes) and
    /// re-packs them; the `&self` paths assume frozen weights and reuse the
    /// pack.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[rows, in_features]`.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.packed.take();
        let y = self.forward_infer(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    /// Inference-only forward pass over shared state: identical arithmetic
    /// to `forward(x, false)` but through `&self`, so a single layer
    /// instance can serve concurrent readers without cloning. Runs on the
    /// cached packed weights with the bias fused into the GEMM store loop.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[rows, in_features]`.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.dims()[1],
            self.in_features,
            "Linear {}: input width {} != {}",
            self.weight.name,
            x.dims()[1],
            self.in_features
        );
        let rows = x.dims()[0];
        let mut out = vec![0.0f32; rows * self.out_features];
        self.infer_into(x.data(), rows, &mut out, FusedActivation::None);
        Tensor::from_vec(out, &[rows, self.out_features])
    }

    /// Arena variant of [`Linear::forward_infer`]: the output tensor is
    /// drawn from `arena` (recycle it when consumed) and `act` is fused
    /// into the GEMM epilogue.
    pub fn forward_infer_in(
        &self,
        x: &Tensor,
        act: FusedActivation,
        arena: &mut TensorArena,
    ) -> Tensor {
        assert_eq!(
            x.dims()[1],
            self.in_features,
            "Linear {}: input width {} != {}",
            self.weight.name,
            x.dims()[1],
            self.in_features
        );
        let rows = x.dims()[0];
        let mut out = arena.tensor(&[rows, self.out_features]);
        self.infer_into(x.data(), rows, out.data_mut(), act);
        out
    }

    /// Lowest-level inference entry: `out = act(x · Wᵀ + b)` over `rows`
    /// rows of `in_features` floats, written into a caller-provided buffer.
    /// This is what both `forward_infer*` wrappers and the attention layer
    /// (which works on flattened `[batch·seq, features]` slices) call.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with `rows` and the layer
    /// widths.
    pub fn infer_into(&self, x: &[f32], rows: usize, out: &mut [f32], act: FusedActivation) {
        assert_eq!(
            x.len(),
            rows * self.in_features,
            "Linear {}: input size mismatch",
            self.weight.name
        );
        let bias = self.bias.value.data();
        let epi = match act {
            FusedActivation::None => Epilogue::Bias(bias),
            FusedActivation::Gelu => Epilogue::BiasGelu(bias),
            FusedActivation::Relu(slope) => Epilogue::BiasRelu(bias, slope),
        };
        self.backend.gemm(x, rows, self.packed_weight(), out, epi);
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .unwrap_or_else(|| panic!("Linear {}: backward before forward", self.weight.name));
        // dW[out,in] = dyᵀ[out,rows]·x[rows,in]
        let dw = dy.matmul_tn(x);
        self.weight.accumulate(&dw);
        // db = column sums of dy
        let (rows, cols) = (dy.dims()[0], dy.dims()[1]);
        let mut db = Tensor::zeros(&[cols]);
        for r in 0..rows {
            for c in 0..cols {
                db.data_mut()[c] += dy.data()[r * cols + c];
            }
        }
        self.bias.accumulate(&db);
        // dx = dy · W
        dy.matmul(&self.weight.value)
    }

    /// Visits the layer's parameters in deterministic order.
    ///
    /// The visitor receives `&mut Param` and may rewrite the weights
    /// (optimizer steps, state-dict loads), so the packed-weight cache is
    /// dropped up front and rebuilt lazily on the next inference call.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.packed.take();
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Drops the forward cache (used when cloning models for inference).
    /// The packed-weight cache survives: it depends only on the weights.
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_fn(dims, |_| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new("l", 4, 3, &mut rng);
        let x = Tensor::zeros(&[5, 4]);
        let y = l.forward(&x, false);
        assert_eq!(y.dims(), &[5, 3]);
        // zero input → output equals bias (zero-initialised here)
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut l = Linear::new("l", 6, 4, &mut rng);
        let x = filled(&[3, 6], 2);
        let dy = filled(&[3, 4], 3);

        let _ = l.forward(&x, true);
        let dx = l.backward(&dy);

        let objective = |l: &mut Linear, x: &Tensor| -> f32 { l.forward(x, false).mul(&dy).sum() };

        let eps = 1e-3;
        // dx check
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (objective(&mut l, &xp) - objective(&mut l, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}] fd={num} got={}",
                dx.data()[idx]
            );
        }
        // dW check
        let dw = l.weight.grad.clone();
        for idx in 0..dw.len() {
            let orig = l.weight.value.data()[idx];
            l.weight.value.data_mut()[idx] = orig + eps;
            let fp = objective(&mut l, &x);
            l.weight.value.data_mut()[idx] = orig - eps;
            let fm = objective(&mut l, &x);
            l.weight.value.data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 1e-2,
                "dW[{idx}] fd={num} got={}",
                dw.data()[idx]
            );
        }
        // db check
        let db = l.bias.grad.clone();
        for idx in 0..db.len() {
            let orig = l.bias.value.data()[idx];
            l.bias.value.data_mut()[idx] = orig + eps;
            let fp = objective(&mut l, &x);
            l.bias.value.data_mut()[idx] = orig - eps;
            let fm = objective(&mut l, &x);
            l.bias.value.data_mut()[idx] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - db.data()[idx]).abs() < 1e-2,
                "db[{idx}] fd={num} got={}",
                db.data()[idx]
            );
        }
    }

    #[test]
    fn grads_accumulate_across_batches() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut l = Linear::new("l", 2, 2, &mut rng);
        let x = filled(&[2, 2], 5);
        let dy = filled(&[2, 2], 6);
        let _ = l.forward(&x, true);
        let _ = l.backward(&dy);
        let g1 = l.weight.grad.clone();
        let _ = l.forward(&x, true);
        let _ = l.backward(&dy);
        assert!(l.weight.grad.allclose(&g1.scale(2.0), 1e-5));
    }

    #[test]
    fn param_count() {
        let mut rng = StdRng::seed_from_u64(7);
        let l = Linear::new("l", 64, 256, &mut rng);
        assert_eq!(l.num_params(), 64 * 256 + 256);
    }

    #[test]
    fn arena_forward_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(9);
        let l = Linear::new("l", 12, 7, &mut rng);
        let x = filled(&[5, 12], 10);
        let want = l.forward_infer(&x);
        let mut arena = TensorArena::new();
        let got = l.forward_infer_in(&x, FusedActivation::None, &mut arena);
        assert!(got.allclose(&want, 0.0), "arena path diverges");
    }

    #[test]
    fn fused_gelu_matches_separate_activation() {
        let mut rng = StdRng::seed_from_u64(11);
        let l = Linear::new("l", 8, 6, &mut rng);
        let x = filled(&[3, 8], 12);
        let mut arena = TensorArena::new();
        let fused = l.forward_infer_in(&x, FusedActivation::Gelu, &mut arena);
        let separate = l.forward_infer(&x).map(bioformer_tensor::ops::gelu);
        assert!(fused.allclose(&separate, 0.0), "fused GELU diverges");
    }

    /// The packed-weight cache must never serve stale weights: mutations
    /// through `visit_params` (the only external mutation path) and calls
    /// through `forward` (&mut) both invalidate it.
    #[test]
    fn weight_mutation_invalidates_packed_cache() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut l = Linear::new("l", 6, 4, &mut rng);
        let x = filled(&[2, 6], 14);
        let before = l.forward_infer(&x); // builds the pack
        l.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                p.value.scale_in_place(2.0);
            }
        });
        let after = l.forward_infer(&x);
        // Bias is zero-initialised, so doubling W must double the output.
        assert!(
            after.allclose(&before.scale(2.0), 1e-5),
            "stale packed weights served after visit_params mutation"
        );
        // And &mut forward repacks too (covers direct in-module pokes).
        l.weight.value.scale_in_place(0.5);
        let half = l.forward(&x, false);
        assert!(half.allclose(&before, 1e-5), "forward served stale pack");
    }

    /// Installing a tuned backend (non-default tile for this layer's
    /// shape) must repack under the new plan and keep results within fp32
    /// kernel tolerance of the default path.
    #[test]
    fn installed_backend_repacks_and_matches_default() {
        use bioformer_tensor::backend::{Fp32Kernel, GemmPlan, PackedCpuBackend, TileSpec};
        use bioformer_tensor::TuneTable;
        let mut rng = StdRng::seed_from_u64(15);
        let mut l = Linear::new("l", 6, 4, &mut rng);
        let x = filled(&[3, 6], 16);
        let want = l.forward_infer(&x); // packs under the default plan
        let mut table = TuneTable::for_current_tier();
        table.insert_fp32(
            0,
            6,
            4,
            GemmPlan::new(
                TileSpec {
                    mr: 8,
                    nr: 32,
                    kc: 0,
                },
                Fp32Kernel::Generic,
            ),
        );
        l.set_backend(std::sync::Arc::new(PackedCpuBackend::with_table(table)));
        let got = l.forward_infer(&x);
        assert!(got.allclose(&want, 1e-4), "tuned backend diverges");
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut l = Linear::new("l", 2, 2, &mut rng);
        l.backward(&Tensor::zeros(&[1, 2]));
    }
}
