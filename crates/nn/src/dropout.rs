//! Inverted dropout with a deterministic per-layer RNG stream.

use bioformer_tensor::Tensor;

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and the survivors are scaled by `1/(1−p)`; inference is the identity.
///
/// The mask RNG is an internal `xorshift64*` stream seeded at construction,
/// so training runs are bit-reproducible regardless of the platform RNG.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    state: u64,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Dropout {
            p,
            state: seed | 1,
            cached_mask: None,
        }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    fn next_f32(&mut self) -> f32 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        ((self.state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32) / (1u64 << 24) as f32
    }

    /// Forward pass. In inference mode (`train == false`) or with `p == 0`
    /// this is the identity.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cached_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.dims());
        for m in mask.data_mut() {
            *m = if self.next_f32() < keep { scale } else { 0.0 };
        }
        let y = x.mul(&mask);
        self.cached_mask = Some(mask);
        y
    }

    /// Inference-only forward through `&self`: dropout is the identity at
    /// inference, so this simply clones the input. Callers that can keep the
    /// original tensor (e.g. [`crate::TransformerBlock::forward_infer`])
    /// should skip the layer entirely to avoid the copy.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        x.clone()
    }

    /// Backward pass; applies the cached mask (identity if the forward pass
    /// ran in inference mode).
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        match &self.cached_mask {
            Some(mask) => dy.mul(mask),
            None => dy.clone(),
        }
    }

    /// Drops the cached mask.
    pub fn clear_cache(&mut self) {
        self.cached_mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[4, 4]);
        assert!(d.forward(&x, false).allclose(&x, 0.0));
    }

    #[test]
    fn zero_p_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 1);
        let x = Tensor::ones(&[4, 4]);
        assert!(d.forward(&x, true).allclose(&x, 0.0));
    }

    #[test]
    fn keeps_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, true);
        // E[y] = 1; empirical mean should be close.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(&[8, 8]);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::ones(&[8, 8]));
        // Gradient flows exactly where activations survived.
        for i in 0..64 {
            assert_eq!(y.data()[i] == 0.0, dx.data()[i] == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn rejects_bad_probability() {
        Dropout::new(1.0, 0);
    }
}
