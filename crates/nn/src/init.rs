//! Weight initialisation schemes.
//!
//! All initialisers draw from a caller-provided [`rand::Rng`] so that every
//! model build in this repository is reproducible from a single seed.

use bioformer_tensor::Tensor;
use rand::Rng;

/// Uniform Xavier/Glorot initialisation over `±√(6/(fan_in+fan_out))` —
/// the default for attention projections and classifier heads.
pub fn xavier_uniform(rng: &mut impl Rng, dims: &[usize], fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.gen_range(-bound..bound))
}

/// Kaiming/He uniform initialisation over `±√(6/fan_in)` — used ahead of
/// ReLU non-linearities (TEMPONet's convolutional trunk).
pub fn kaiming_uniform(rng: &mut impl Rng, dims: &[usize], fan_in: usize) -> Tensor {
    let bound = (6.0 / fan_in as f32).sqrt();
    Tensor::from_fn(dims, |_| rng.gen_range(-bound..bound))
}

/// Zero-mean Gaussian with the given standard deviation — used for the class
/// token (ViT initialises it from `N(0, 0.02)`).
pub fn normal(rng: &mut impl Rng, dims: &[usize], std: f32) -> Tensor {
    // Box-Muller transform; two uniforms per normal sample.
    Tensor::from_fn(dims, |_| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(&mut rng, &[64, 64], 64, 64);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not degenerate
        assert!(t.abs_max() > bound * 0.5);
    }

    #[test]
    fn kaiming_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_uniform(&mut rng, &[32, 16], 16);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn normal_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&mut rng, &[10_000], 0.02);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 1e-3, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 2e-3, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), &[8, 8], 8, 8);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), &[8, 8], 8, 8);
        assert!(a.allclose(&b, 0.0));
    }
}
