//! Panel-packed, register-tiled GEMM kernels — the fp32 compute core of the
//! inference hot path.
//!
//! # Why packing
//!
//! The naive kernels in [`crate::matmul`] stream the right-hand matrix `B`
//! straight from its row-major buffer. For `A·Bᵀ` (the linear-layer layout)
//! every output element re-reads a whole `B` row, and for `A·B` every `k`
//! step touches a full `B` row of `n` floats — at model sizes the same
//! cache lines are fetched over and over.
//!
//! The packed kernels instead reorganise `B` **once** into column panels of
//! width [`NR`]: panel `p` stores `B[kk][p·NR .. p·NR+NR]` contiguously for
//! `kk = 0..k` (zero-padded past `n`). A register-tiled [`MR`]`×`[`NR`]
//! microkernel then walks one `A` row block against one panel with all
//! `MR·NR` accumulators live in registers, so each packed element is loaded
//! once per row block and the inner loop is a dense run of FMAs. The tile
//! itself comes from the [`bioformer_simd`] dispatch table — explicit
//! AVX-512F/FMA broadcast-FMA kernels on x86-64, with the original safe
//! loop kept as the portable fallback. Packing costs `O(k·n)` against
//! the GEMM's `O(m·k·n)` work, and for layer weights it is cached across
//! calls (see `bioformer-nn::Linear`).
//!
//! # Epilogues
//!
//! The store loop accepts an [`Epilogue`] so bias-add and element-wise
//! activations happen while the output tile is still hot, instead of in a
//! separate pass over the activations:
//! `out = act(acc + bias)` per element, exactly once.
//!
//! Accumulation order within one output element is the plain `k`-ascending
//! order, so results are deterministic and independent of threading (threads
//! split output *rows*, never the `k` dimension).

use crate::backend::GemmPlan;
use crate::ops;
use crate::tensor::Tensor;

/// Rows of `A` processed per microkernel invocation (default tile).
pub const MR: usize = 4;

/// Columns of `B` per packed panel (and per microkernel invocation) in the
/// default tile.
pub const NR: usize = 16;

/// Largest row-block height the variable-geometry driver
/// ([`gemm_packed_generic`]) accepts.
pub const MAX_MR: usize = 8;

/// Largest panel width the variable-geometry driver accepts.
pub const MAX_NR: usize = 64;

/// Length in floats of the packed image of a `k×n` right-hand side at the
/// default panel width: `n` rounded up to whole [`NR`] panels, each panel
/// `k` deep.
pub const fn packed_len(k: usize, n: usize) -> usize {
    packed_len_nr(k, n, NR)
}

/// [`packed_len`] at an arbitrary panel width `nr`.
pub const fn packed_len_nr(k: usize, n: usize, nr: usize) -> usize {
    k * n.div_ceil(nr) * nr
}

/// What happens to each output element as it is stored.
///
/// All variants holding a slice expect it to be `n` long (one entry per
/// output column).
#[derive(Clone, Copy)]
pub enum Epilogue<'a> {
    /// `out = acc` — plain GEMM.
    None,
    /// `out = acc · s` — scaled GEMM (attention's `Q·Kᵀ/√P` in one pass).
    Scale(f32),
    /// `out = acc + bias[j]` — affine layer.
    Bias(&'a [f32]),
    /// `out = gelu(acc + bias[j])` — affine layer fused with the tanh-GELU
    /// used inside transformer FFNs.
    BiasGelu(&'a [f32]),
    /// `out = leaky_relu(acc + bias[j], slope)` — affine layer fused with a
    /// (possibly leaky) ReLU.
    BiasRelu(&'a [f32], f32),
}

impl Epilogue<'_> {
    /// Applies the epilogue to one accumulated element of column `j`.
    #[inline(always)]
    fn apply(&self, acc: f32, j: usize) -> f32 {
        match *self {
            Epilogue::None => acc,
            Epilogue::Scale(s) => acc * s,
            Epilogue::Bias(b) => acc + b[j],
            Epilogue::BiasGelu(b) => ops::gelu(acc + b[j]),
            Epilogue::BiasRelu(b, slope) => {
                let v = acc + b[j];
                if v > 0.0 {
                    v
                } else {
                    slope * v
                }
            }
        }
    }
}

/// Packs a row-major `B[k, n]` into panel layout (`C = A·B` orientation).
///
/// `dst` must be exactly [`packed_len`]`(k, n)` long; panel tails past `n`
/// are zero-filled so the microkernel never needs a column bound check.
///
/// # Panics
///
/// Panics if `b` or `dst` have the wrong length.
pub fn pack_b(b: &[f32], k: usize, n: usize, dst: &mut [f32]) {
    pack_b_nr(b, k, n, NR, dst);
}

/// [`pack_b`] at an arbitrary panel width `nr` (`dst` must be
/// [`packed_len_nr`]`(k, n, nr)` long).
///
/// # Panics
///
/// Panics if `b` or `dst` have the wrong length.
pub fn pack_b_nr(b: &[f32], k: usize, n: usize, nr: usize, dst: &mut [f32]) {
    assert_eq!(b.len(), k * n, "pack_b: source size");
    assert_eq!(
        dst.len(),
        packed_len_nr(k, n, nr),
        "pack_b: destination size"
    );
    let panels = n.div_ceil(nr);
    for p in 0..panels {
        let j0 = p * nr;
        let w = (n - j0).min(nr);
        let panel = &mut dst[p * k * nr..(p + 1) * k * nr];
        for kk in 0..k {
            let src = &b[kk * n + j0..kk * n + j0 + w];
            let row = &mut panel[kk * nr..kk * nr + nr];
            row[..w].copy_from_slice(src);
            row[w..].fill(0.0);
        }
    }
}

/// Packs a row-major `Bᵀ`-layout matrix `bt[n, k]` into the same panel
/// layout as [`pack_b`] (`C = A·Bᵀ` orientation — linear-layer weights
/// `[out, in]`, attention keys `[seq, head_dim]`).
///
/// # Panics
///
/// Panics if `bt` or `dst` have the wrong length.
pub fn pack_b_t(bt: &[f32], n: usize, k: usize, dst: &mut [f32]) {
    pack_b_t_nr(bt, n, k, NR, dst);
}

/// [`pack_b_t`] at an arbitrary panel width `nr` (`dst` must be
/// [`packed_len_nr`]`(k, n, nr)` long).
///
/// # Panics
///
/// Panics if `bt` or `dst` have the wrong length.
pub fn pack_b_t_nr(bt: &[f32], n: usize, k: usize, nr: usize, dst: &mut [f32]) {
    assert_eq!(bt.len(), n * k, "pack_b_t: source size");
    assert_eq!(
        dst.len(),
        packed_len_nr(k, n, nr),
        "pack_b_t: destination size"
    );
    let panels = n.div_ceil(nr);
    for p in 0..panels {
        let j0 = p * nr;
        let w = (n - j0).min(nr);
        let panel = &mut dst[p * k * nr..(p + 1) * k * nr];
        // Walk source rows (columns of the logical B) to stay sequential in
        // `bt`; each source row scatters down one panel column.
        panel.fill(0.0);
        for j in 0..w {
            let src = &bt[(j0 + j) * k..(j0 + j + 1) * k];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * nr + j] = v;
            }
        }
    }
}

/// A heap-owned packed right-hand side, for weight matrices that are packed
/// once and reused across many GEMM calls.
#[derive(Debug, Clone)]
pub struct PackedB {
    buf: Vec<f32>,
    k: usize,
    n: usize,
    plan: GemmPlan,
}

impl PackedB {
    /// Packs a row-major `B[k, n]` (`C = A·B` orientation) at the default
    /// plan.
    pub fn from_b(b: &[f32], k: usize, n: usize) -> Self {
        Self::from_b_with(GemmPlan::default(), b, k, n)
    }

    /// Packs a row-major `Bᵀ`-layout matrix `bt[n, k]`
    /// (`C = A·Bᵀ` orientation — PyTorch `[out, in]` weights) at the
    /// default plan.
    pub fn from_b_t(bt: &[f32], n: usize, k: usize) -> Self {
        Self::from_b_t_with(GemmPlan::default(), bt, n, k)
    }

    /// Packs a row-major `B[k, n]` at the panel width the given plan's
    /// tile spec calls for, and remembers the plan so later GEMMs run the
    /// matching kernel.
    pub fn from_b_with(plan: GemmPlan, b: &[f32], k: usize, n: usize) -> Self {
        let mut buf = vec![0.0f32; plan.packed_len(k, n)];
        pack_b_nr(b, k, n, plan.spec.nr, &mut buf);
        PackedB { buf, k, n, plan }
    }

    /// Packs a row-major `Bᵀ`-layout matrix `bt[n, k]` at the panel width
    /// the given plan's tile spec calls for.
    pub fn from_b_t_with(plan: GemmPlan, bt: &[f32], n: usize, k: usize) -> Self {
        let mut buf = vec![0.0f32; plan.packed_len(k, n)];
        pack_b_t_nr(bt, n, k, plan.spec.nr, &mut buf);
        PackedB { buf, k, n, plan }
    }

    /// Inner (contraction) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output columns.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The plan this buffer was packed for.
    pub fn plan(&self) -> GemmPlan {
        self.plan
    }

    /// The packed storage (length `plan().packed_len(k, n)`).
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }
}

// The tile geometry is shared with the microkernel crate; a mismatch would
// silently corrupt panel indexing, so pin it at compile time.
const _: () = assert!(MR == bioformer_simd::MR && NR == bioformer_simd::NR);

/// `MR × NR` register-tiled microkernel: accumulates `mr` rows of `a`
/// (row stride `k`) against one packed panel via the dispatched
/// [`bioformer_simd`] tile and stores one output tile.
///
/// `mr ≤ MR` handles the row tail; the column tail needs no handling
/// because panels are zero-padded and `store_w ≤ NR` bounds the store.
/// The accumulator tile lives in registers inside `tile`; only the
/// epilogue-applied store touches `out`.
#[allow(clippy::too_many_arguments)] // hot-loop primitive: a struct would obscure the call
#[inline(always)]
fn microkernel(
    tile: bioformer_simd::Fp32TileFn,
    a: &[f32],
    k: usize,
    panel: &[f32],
    mr: usize,
    out: &mut [f32],
    ldc: usize,
    j0: usize,
    store_w: usize,
    epi: &Epilogue<'_>,
) {
    let mut acc = [[0.0f32; NR]; MR];
    tile(a, k, panel, mr, &mut acc);
    for (i, acc_row) in acc.iter().enumerate().take(mr) {
        let out_row = &mut out[i * ldc + j0..i * ldc + j0 + store_w];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = epi.apply(acc_row[j], j0 + j);
        }
    }
}

/// Serial packed GEMM over a row range: `out[i, :] = epi(A[i, :] · B)` for
/// `i` in `0..m`, with `a` holding exactly those `m` rows and `out` the
/// matching `m × n` destination slice (`ldc == n`).
#[allow(clippy::too_many_arguments)] // hot-loop driver, mirrors gemm_packed_with
fn gemm_rows(
    tile: bioformer_simd::Fp32TileFn,
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
    epi: &Epilogue<'_>,
) {
    let panels = n.div_ceil(NR);
    let mut i = 0usize;
    while i < m {
        let mr = (m - i).min(MR);
        let a_block = &a[i * k..(i + mr) * k];
        let out_block = &mut out[i * n..(i + mr) * n];
        for p in 0..panels {
            let j0 = p * NR;
            let store_w = (n - j0).min(NR);
            let panel = panel_of(packed, k, p);
            microkernel(tile, a_block, k, panel, mr, out_block, n, j0, store_w, epi);
        }
        i += mr;
    }
}

/// The `p`-th panel of a packed buffer.
#[inline(always)]
fn panel_of(packed: &[f32], k: usize, p: usize) -> &[f32] {
    &packed[p * k * NR..(p + 1) * k * NR]
}

/// Packed GEMM with fused epilogue: `out = epi(A · B)` where `a` is
/// row-major `[m, k]`, `packed` is the [`pack_b`]/[`pack_b_t`] image of the
/// `k×n` right-hand side, and `out` is row-major `[m, n]`.
///
/// Output rows are split across threads via the shared
/// [`crate::matmul::plan_threads`] planner when the problem is large
/// enough; the per-element accumulation order (ascending `k`) is identical
/// either way, so results do not depend on the thread count.
///
/// # Panics
///
/// Panics if any buffer length disagrees with `(m, k, n)`.
pub fn gemm_packed(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
    epi: Epilogue<'_>,
) {
    // Resolve the dispatched tile once per GEMM, not once per tile.
    gemm_packed_with(
        bioformer_simd::kernels().fp32_tile,
        a,
        m,
        k,
        packed,
        n,
        out,
        epi,
    );
}

/// [`gemm_packed`] with an explicitly chosen microkernel tile — the hook
/// benches and tier-parity tests use to pin a [`bioformer_simd`] tier
/// (e.g. the portable oracle) instead of the runtime-dispatched one.
///
/// # Panics
///
/// Panics if any buffer length disagrees with `(m, k, n)`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_with(
    tile: bioformer_simd::Fp32TileFn,
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
    epi: Epilogue<'_>,
) {
    assert_eq!(a.len(), m * k, "gemm_packed: A size");
    assert_eq!(packed.len(), packed_len(k, n), "gemm_packed: packed size");
    assert_eq!(out.len(), m * n, "gemm_packed: out size");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Degenerate contraction: the accumulators are all zero, but the
        // epilogue still applies (bias rows survive an empty reduction).
        for row in out.chunks_mut(n) {
            for (j, o) in row.iter_mut().enumerate() {
                *o = epi.apply(0.0, j);
            }
        }
        return;
    }
    let work = crate::matmul::gemm_work(m, n, k);
    crate::matmul::parallel_over_rows(out, m, n, work, |row0, rows_out| {
        let rows = rows_out.len() / n;
        let a_rows = &a[row0 * k..(row0 + rows) * k];
        gemm_rows(tile, a_rows, rows, k, packed, n, rows_out, &epi);
    });
}

/// Variable-geometry packed GEMM: the safe driver behind non-default
/// [`crate::backend::TileSpec`]s. `packed` must be the
/// [`pack_b_nr`]/[`pack_b_t_nr`] image at panel width `nr`; `mr`/`nr` set
/// the row-block height and panel width (`1..=`[`MAX_MR`],
/// `1..=`[`MAX_NR`]); `kc` blocks the contraction dimension (`0` means
/// "no blocking"), sweeping all row blocks and panels per `k`-chunk so
/// the active `A`/panel chunk stays cache-resident.
///
/// Per output element the accumulation order is plain ascending `k`
/// regardless of blocking — chunks resume from the stored partial sum, so
/// the f32 addition sequence (and therefore the result, bit for bit)
/// matches the portable fixed-tile kernel. Epilogues are applied only on
/// the final `k`-chunk, exactly once per element.
///
/// # Panics
///
/// Panics if `mr`/`nr` are out of range or any buffer length disagrees
/// with `(m, k, n, nr)`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_generic(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
    epi: Epilogue<'_>,
    mr: usize,
    nr: usize,
    kc: usize,
) {
    assert!(
        (1..=MAX_MR).contains(&mr),
        "gemm_packed_generic: mr {mr} out of 1..={MAX_MR}"
    );
    assert!(
        (1..=MAX_NR).contains(&nr),
        "gemm_packed_generic: nr {nr} out of 1..={MAX_NR}"
    );
    assert_eq!(a.len(), m * k, "gemm_packed: A size");
    assert_eq!(
        packed.len(),
        packed_len_nr(k, n, nr),
        "gemm_packed: packed size"
    );
    assert_eq!(out.len(), m * n, "gemm_packed: out size");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for row in out.chunks_mut(n) {
            for (j, o) in row.iter_mut().enumerate() {
                *o = epi.apply(0.0, j);
            }
        }
        return;
    }
    let kc = if kc == 0 { k } else { kc };
    let work = crate::matmul::gemm_work(m, n, k);
    crate::matmul::parallel_over_rows(out, m, n, work, |row0, rows_out| {
        let rows = rows_out.len() / n;
        let a_rows = &a[row0 * k..(row0 + rows) * k];
        generic_rows(a_rows, rows, k, packed, n, rows_out, &epi, mr, nr, kc);
    });
}

/// Serial body of [`gemm_packed_generic`] over one output row range.
///
/// Between `k`-chunks the partial sums live **raw** in `out` (no epilogue);
/// the next chunk's accumulator tile is initialised from them, so each
/// element's f32 additions stay in ascending-`k` order across chunks.
#[allow(clippy::too_many_arguments)] // hot-loop driver, mirrors gemm_rows
fn generic_rows(
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
    epi: &Epilogue<'_>,
    mr_max: usize,
    nr: usize,
    kc: usize,
) {
    let panels = n.div_ceil(nr);
    let mut k0 = 0usize;
    while k0 < k {
        let k1 = (k0 + kc).min(k);
        let (first, last) = (k0 == 0, k1 == k);
        let mut i = 0usize;
        while i < m {
            let mr = (m - i).min(mr_max);
            for p in 0..panels {
                let j0 = p * nr;
                let store_w = (n - j0).min(nr);
                let panel = &packed[p * k * nr..(p + 1) * k * nr];
                let mut acc = [[0.0f32; MAX_NR]; MAX_MR];
                if !first {
                    for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                        let row0 = (i + r) * n + j0;
                        acc_row[..store_w].copy_from_slice(&out[row0..row0 + store_w]);
                    }
                }
                for kk in k0..k1 {
                    let b_row = &panel[kk * nr..kk * nr + nr];
                    for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                        let av = a[(i + r) * k + kk];
                        for (slot, &bv) in acc_row.iter_mut().zip(b_row.iter()) {
                            *slot += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate().take(mr) {
                    let row0 = (i + r) * n + j0;
                    let dst = &mut out[row0..row0 + store_w];
                    if last {
                        for (j, o) in dst.iter_mut().enumerate() {
                            *o = epi.apply(acc_row[j], j0 + j);
                        }
                    } else {
                        dst.copy_from_slice(&acc_row[..store_w]);
                    }
                }
            }
            i += mr;
        }
        k0 = k1;
    }
}

/// Convenience wrapper: packs `b[k, n]` into `scratch` and multiplies.
/// `scratch` is resized as needed (reuse it across calls to avoid
/// reallocation — e.g. from a [`crate::arena::TensorArena`] buffer).
pub fn matmul_packed_into(
    a: &Tensor,
    b: &Tensor,
    scratch: &mut Vec<f32>,
    out: &mut [f32],
    epi: Epilogue<'_>,
) {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_packed_into: inner dimensions disagree");
    scratch.clear();
    scratch.resize(packed_len(k, n), 0.0);
    pack_b(b.data(), k, n, scratch);
    gemm_packed(a.data(), m, k, scratch, n, out, epi);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32)
                    - 0.5
            })
            .collect()
    }

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn close(a: &[f32], b: &[f32], atol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= atol)
    }

    #[test]
    fn packed_matches_naive_across_shapes() {
        // Tile-multiple, sub-tile, and ragged shapes.
        for &(m, k, n) in &[
            (4, 16, 16),
            (1, 1, 1),
            (3, 5, 7),
            (8, 64, 256),
            (31, 64, 17),
            (9, 3, 33),
            (5, 0, 4),
            (0, 4, 4),
            (4, 4, 0),
        ] {
            let a = filled(m * k, 1 + m as u64);
            let b = filled(k * n, 2 + n as u64);
            let mut packed = vec![0.0f32; packed_len(k, n)];
            pack_b(&b, k, n, &mut packed);
            let mut out = vec![f32::NAN; m * n];
            gemm_packed(&a, m, k, &packed, n, &mut out, Epilogue::None);
            let want = naive(&a, &b, m, k, n);
            assert!(close(&out, &want, 1e-4), "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn pack_b_t_matches_pack_of_transpose() {
        let (n, k) = (7, 5);
        let bt = filled(n * k, 3);
        // Transpose to row-major [k, n].
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut p1 = vec![0.0f32; packed_len(k, n)];
        let mut p2 = vec![0.0f32; packed_len(k, n)];
        pack_b(&b, k, n, &mut p1);
        pack_b_t(&bt, n, k, &mut p2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn bias_epilogue_adds_per_column() {
        let (m, k, n) = (3, 4, 6);
        let a = filled(m * k, 4);
        let b = filled(k * n, 5);
        let bias = filled(n, 6);
        let mut packed = vec![0.0f32; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut out = vec![0.0f32; m * n];
        gemm_packed(&a, m, k, &packed, n, &mut out, Epilogue::Bias(&bias));
        let want = naive(&a, &b, m, k, n);
        for i in 0..m {
            for j in 0..n {
                assert!((out[i * n + j] - (want[i * n + j] + bias[j])).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn gelu_epilogue_matches_separate_pass() {
        let (m, k, n) = (5, 8, 19);
        let a = filled(m * k, 7);
        let b = filled(k * n, 8);
        let bias = filled(n, 9);
        let mut packed = vec![0.0f32; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut fused = vec![0.0f32; m * n];
        gemm_packed(&a, m, k, &packed, n, &mut fused, Epilogue::BiasGelu(&bias));
        let mut separate = vec![0.0f32; m * n];
        gemm_packed(&a, m, k, &packed, n, &mut separate, Epilogue::Bias(&bias));
        for v in &mut separate {
            *v = ops::gelu(*v);
        }
        assert_eq!(fused, separate, "fusion must be bit-identical");
    }

    #[test]
    fn relu_epilogue_applies_slope() {
        let (m, k, n) = (2, 3, 4);
        let a = filled(m * k, 10);
        let b = filled(k * n, 11);
        let bias = vec![0.0f32; n];
        let mut packed = vec![0.0f32; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut out = vec![0.0f32; m * n];
        gemm_packed(
            &a,
            m,
            k,
            &packed,
            n,
            &mut out,
            Epilogue::BiasRelu(&bias, 0.5),
        );
        let want = naive(&a, &b, m, k, n);
        for (o, w) in out.iter().zip(want.iter()) {
            let expect = if *w > 0.0 { *w } else { 0.5 * *w };
            assert!((o - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_k_with_bias_emits_bias() {
        let (m, k, n) = (2, 0, 3);
        let bias = vec![1.0f32, 2.0, 3.0];
        let packed = vec![0.0f32; packed_len(k, n)];
        let mut out = vec![f32::NAN; m * n];
        gemm_packed(&[], m, k, &packed, n, &mut out, Epilogue::Bias(&bias));
        assert_eq!(out, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    /// The variable-geometry driver must be bit-identical to the portable
    /// fixed tile at every (mr, nr, kc) — including k-blocked runs, whose
    /// chunk handoff through `out` must preserve the ascending-k addition
    /// order exactly.
    #[test]
    fn generic_driver_is_bit_identical_to_portable_tile() {
        let portable = bioformer_simd::select(Some(bioformer_simd::Tier::Portable)).fp32_tile;
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (31, 64, 17), (8, 64, 256), (5, 0, 4)] {
            let a = filled(m * k, 21 + m as u64);
            let b = filled(k * n, 22 + n as u64);
            let bias = filled(n, 23);
            let mut reference = vec![f32::NAN; m * n];
            let mut packed = vec![0.0f32; packed_len(k, n)];
            pack_b(&b, k, n, &mut packed);
            gemm_packed_with(
                portable,
                &a,
                m,
                k,
                &packed,
                n,
                &mut reference,
                Epilogue::BiasGelu(&bias),
            );
            for &(mr, nr, kc) in &[
                (MR, NR, 0),
                (8, 16, 0),
                (4, 32, 0),
                (2, 8, 0),
                (4, 16, 7),
                (8, 64, 16),
                (1, 1, 1),
            ] {
                let mut gp = vec![0.0f32; packed_len_nr(k, n, nr)];
                pack_b_nr(&b, k, n, nr, &mut gp);
                let mut out = vec![f32::NAN; m * n];
                gemm_packed_generic(
                    &a,
                    m,
                    k,
                    &gp,
                    n,
                    &mut out,
                    Epilogue::BiasGelu(&bias),
                    mr,
                    nr,
                    kc,
                );
                assert_eq!(
                    out, reference,
                    "generic ({mr},{nr},{kc}) diverges at ({m},{k},{n})"
                );
            }
        }
    }

    #[test]
    fn pack_b_t_nr_matches_pack_b_nr_of_transpose() {
        let (n, k, nr) = (17, 9, 8);
        let bt = filled(n * k, 31);
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut p1 = vec![0.0f32; packed_len_nr(k, n, nr)];
        let mut p2 = vec![0.0f32; packed_len_nr(k, n, nr)];
        pack_b_nr(&b, k, n, nr, &mut p1);
        pack_b_t_nr(&bt, n, k, nr, &mut p2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn threaded_rows_match_serial() {
        let _guard = crate::parallel::override_guard(4);
        // Big enough to clear PARALLEL_WORK_THRESHOLD (2·m·n·k ≥ 2^26).
        let (m, k, n) = (256, 256, 256);
        let a = filled(m * k, 12);
        let b = filled(k * n, 13);
        let mut packed = vec![0.0f32; packed_len(k, n)];
        pack_b(&b, k, n, &mut packed);
        let mut threaded = vec![0.0f32; m * n];
        gemm_packed(&a, m, k, &packed, n, &mut threaded, Epilogue::None);
        drop(_guard);
        let _guard = crate::parallel::override_guard(1);
        let mut serial = vec![0.0f32; m * n];
        gemm_packed(&a, m, k, &packed, n, &mut serial, Epilogue::None);
        assert_eq!(threaded, serial, "thread count must not change results");
    }
}
