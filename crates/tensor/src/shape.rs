//! Tensor shape metadata and index arithmetic.

use std::fmt;

/// Maximum supported tensor rank.
///
/// Nothing in a 1-D-signal transformer stack needs more than
/// `[batch, seq, heads·dim]`-style rank-3 tensors (rank 4 leaves headroom
/// for one more axis), and capping the rank lets [`Shape`] store its
/// dimensions **inline** instead of in a heap `Vec` — constructing a
/// tensor must not allocate anything beyond its element buffer, or the
/// allocation-free inference arena would leak one small heap allocation
/// per intermediate tensor.
pub const MAX_RANK: usize = 4;

/// The dimensions of a [`crate::Tensor`], stored outermost-first
/// (row-major / C order).
///
/// `Shape` stores up to [`MAX_RANK`] dimensions inline (no heap
/// allocation) and provides element counting, flat-index computation and
/// human-readable formatting.
///
/// # Example
///
/// ```
/// use bioformer_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.flat_index(&[1, 2, 3]), 23);
/// ```
// Invariant: dims[rank..] is always zero, so the derived equality/hash
// over the full array agree with comparing `dims()` slices.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    /// Creates a shape from a dimension slice.
    ///
    /// A zero-rank shape (`&[]`) denotes a scalar with one element.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len()` exceeds [`MAX_RANK`].
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "shape rank {} exceeds MAX_RANK {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len() as u8,
        }
    }

    /// Returns the dimensions as a slice, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Returns `true` when the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(
            axis < self.rank(),
            "axis {axis} out of bounds for rank {}",
            self.rank()
        );
        self.dims[axis]
    }

    /// Row-major strides: `strides[i]` is the flat distance between
    /// consecutive indices along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Computes the flat (contiguous, row-major) offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index.len() != self.rank()` or any coordinate is out of
    /// bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank()
        );
        let mut flat = 0usize;
        let mut stride = 1usize;
        for axis in (0..self.rank()).rev() {
            let coord = index[axis];
            assert!(
                coord < self.dims[axis],
                "index {coord} out of bounds for axis {axis} with size {}",
                self.dims[axis]
            );
            flat += coord * stride;
            stride *= self.dims[axis];
        }
        flat
    }

    /// Returns `true` when both shapes describe 2-D matrices that can be
    /// multiplied (`self` is `[m, k]`, `rhs` is `[k, n]`).
    pub fn matmul_compatible(&self, rhs: &Shape) -> bool {
        self.rank() == 2 && rhs.rank() == 2 && self.dims[1] == rhs.dims[0]
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.len(), 60);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 4);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn zero_sized() {
        let s = Shape::new(&[2, 0, 3]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let flat = s.flat_index(&[i, j, k]);
                    assert!(flat < 24);
                    assert!(seen.insert(flat), "duplicate flat index {flat}");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_out_of_bounds() {
        Shape::new(&[2, 2]).flat_index(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn flat_index_wrong_rank() {
        Shape::new(&[2, 2]).flat_index(&[0]);
    }

    #[test]
    fn matmul_compat() {
        assert!(Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[2, 3]).matmul_compatible(&Shape::new(&[2, 4])));
        assert!(!Shape::new(&[2, 3, 1]).matmul_compatible(&Shape::new(&[3, 4])));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2×3]");
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_RANK")]
    fn over_max_rank_rejected() {
        Shape::new(&[1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds for rank")]
    fn dim_past_rank_panics() {
        // The inline array physically holds MAX_RANK entries; reading past
        // the logical rank must still be an error, not a silent zero.
        Shape::new(&[2, 3]).dim(2);
    }

    /// Shapes with equal dims compare equal however they were built, and
    /// the padding tail never leaks into equality or hashing.
    #[test]
    fn equality_ignores_padding() {
        let a = Shape::new(&[2, 3]);
        let b = Shape::from(vec![2, 3]);
        assert_eq!(a, b);
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
        assert_ne!(Shape::new(&[2]), Shape::new(&[2, 0]));
    }
}
