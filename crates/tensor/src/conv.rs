//! 1-D convolution and pooling primitives (forward and backward).
//!
//! Layout conventions (single sample, no batch axis — the layers in
//! `bioformer-nn` loop over the batch):
//!
//! * input `x`: `[in_channels, length]`
//! * weight `w`: `[out_channels, in_channels, kernel]`
//! * bias `b`: `[out_channels]`
//! * output `y`: `[out_channels, out_length]`
//!
//! The Bioformer patch embedding uses `stride == kernel, padding = 0,
//! dilation = 1` (non-overlapping windows, §III-A of the paper); the
//! TEMPONet baseline additionally needs `dilation > 1` and symmetric zero
//! padding, so the general form is implemented once here.

use crate::tensor::Tensor;

/// Hyper-parameters of a 1-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv1dSpec {
    /// Step between output positions.
    pub stride: usize,
    /// Symmetric zero padding added to both ends of the input.
    pub padding: usize,
    /// Spacing between kernel taps.
    pub dilation: usize,
}

impl Default for Conv1dSpec {
    fn default() -> Self {
        Conv1dSpec {
            stride: 1,
            padding: 0,
            dilation: 1,
        }
    }
}

impl Conv1dSpec {
    /// A non-overlapping "patch embedding" convolution where the stride
    /// equals the kernel width (Bioformer front-end).
    pub fn patch(kernel: usize) -> Self {
        Conv1dSpec {
            stride: kernel,
            padding: 0,
            dilation: 1,
        }
    }

    /// Effective kernel extent after dilation.
    pub fn extent(&self, kernel: usize) -> usize {
        (kernel - 1) * self.dilation + 1
    }

    /// Output length for an input of `len` samples and kernel width
    /// `kernel`, or `None` when the input is too short.
    pub fn out_len(&self, len: usize, kernel: usize) -> Option<usize> {
        let padded = len + 2 * self.padding;
        let ext = self.extent(kernel);
        if padded < ext {
            None
        } else {
            Some((padded - ext) / self.stride + 1)
        }
    }
}

/// Lowers a `[in_ch, len]` signal into the im2col matrix
/// `[out_len, in_ch · kernel]`: row `t` holds the receptive field of output
/// position `t`, so the convolution becomes a single GEMM with the
/// flattened `[out_ch, in_ch · kernel]` weight matrix.
///
/// # Panics
///
/// Panics if the input is shorter than the dilated kernel extent.
pub fn im2col(x: &Tensor, kernel: usize, spec: Conv1dSpec) -> Tensor {
    let (c_in, len) = (x.dims()[0], x.dims()[1]);
    let out_len = spec
        .out_len(len, kernel)
        .unwrap_or_else(|| panic!("im2col: input of length {len} too short for kernel {kernel}"));
    let ck = c_in * kernel;
    let mut cols = Tensor::zeros(&[out_len, ck]);
    im2col_into(x.data(), c_in, len, kernel, spec, cols.data_mut());
    cols
}

/// Slice-level [`im2col`] into a caller-provided buffer (the allocation-free
/// primitive behind it): lowers `x` (`c_in · len` floats, `[in_ch, len]`
/// layout) into `dst` (`out_len · c_in · kernel` floats). Every element of
/// `dst` is written (padding taps write zero), so recycled scratch buffers
/// need no pre-clearing.
///
/// # Panics
///
/// Panics if the input is shorter than the dilated kernel extent or the
/// buffer lengths disagree.
pub fn im2col_into(
    x: &[f32],
    c_in: usize,
    len: usize,
    kernel: usize,
    spec: Conv1dSpec,
    dst: &mut [f32],
) {
    assert_eq!(x.len(), c_in * len, "im2col: input size");
    let out_len = spec
        .out_len(len, kernel)
        .unwrap_or_else(|| panic!("im2col: input of length {len} too short for kernel {kernel}"));
    let ck = c_in * kernel;
    assert_eq!(dst.len(), out_len * ck, "im2col: destination size");
    for ot in 0..out_len {
        let start = ot * spec.stride;
        let row = &mut dst[ot * ck..(ot + 1) * ck];
        for ic in 0..c_in {
            let x_row = &x[ic * len..(ic + 1) * len];
            for kk in 0..kernel {
                let pos = start + kk * spec.dilation;
                let mut v = 0.0;
                if pos >= spec.padding {
                    let xi = pos - spec.padding;
                    if xi < len {
                        v = x_row[xi];
                    }
                }
                row[ic * kernel + kk] = v;
            }
        }
    }
}

/// Scatter-adds an im2col-shaped gradient `[out_len, in_ch · kernel]` back
/// onto the input layout `[in_ch, len]` (adjoint of [`im2col`]).
pub fn col2im(cols: &Tensor, c_in: usize, len: usize, kernel: usize, spec: Conv1dSpec) -> Tensor {
    let out_len = cols.dims()[0];
    let ck = c_in * kernel;
    assert_eq!(cols.dims()[1], ck, "col2im: column width mismatch");
    let mut dx = Tensor::zeros(&[c_in, len]);
    let cd = cols.data();
    let xd = dx.data_mut();
    for ot in 0..out_len {
        let start = ot * spec.stride;
        let row = &cd[ot * ck..(ot + 1) * ck];
        for ic in 0..c_in {
            for kk in 0..kernel {
                let pos = start + kk * spec.dilation;
                if pos >= spec.padding {
                    let xi = pos - spec.padding;
                    if xi < len {
                        xd[ic * len + xi] += row[ic * kernel + kk];
                    }
                }
            }
        }
    }
    dx
}

/// Forward 1-D convolution, lowered to im2col + GEMM (the direct
/// nested-loop form is kept as [`conv1d_forward_direct`] and used as a test
/// oracle).
///
/// # Panics
///
/// Panics if shapes are inconsistent or the input is shorter than the
/// dilated kernel extent.
pub fn conv1d_forward(x: &Tensor, w: &Tensor, b: &Tensor, spec: Conv1dSpec) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "conv1d: input must be [channels, len]");
    assert_eq!(
        w.shape().rank(),
        3,
        "conv1d: weight must be [out_ch, in_ch, kernel]"
    );
    let c_in = x.dims()[0];
    let (c_out, w_cin, kernel) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    assert_eq!(c_in, w_cin, "conv1d: channel mismatch");
    assert_eq!(b.dims(), &[c_out], "conv1d: bias must be [out_ch]");
    let cols = im2col(x, kernel, spec);
    conv1d_forward_cols(&cols, w, b)
}

/// Forward convolution from a precomputed im2col matrix (training caches
/// the lowering once and reuses it in the backward pass).
pub fn conv1d_forward_cols(cols: &Tensor, w: &Tensor, b: &Tensor) -> Tensor {
    let (c_out, c_in, kernel) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    let out_len = cols.dims()[0];
    let w2d = w.reshape(&[c_out, c_in * kernel]);
    // [out_len, ck] · [c_out, ck]ᵀ = [out_len, c_out]
    let y_t = cols.matmul_nt(&w2d);
    let mut y = Tensor::zeros(&[c_out, out_len]);
    let yd = y.data_mut();
    let ytd = y_t.data();
    for ot in 0..out_len {
        for oc in 0..c_out {
            yd[oc * out_len + ot] = ytd[ot * c_out + oc] + b.data()[oc];
        }
    }
    y
}

/// Direct (nested-loop) forward convolution — reference implementation used
/// as the oracle for the GEMM-lowered path.
///
/// # Panics
///
/// Panics if shapes are inconsistent or the input is shorter than the
/// dilated kernel extent.
pub fn conv1d_forward_direct(x: &Tensor, w: &Tensor, b: &Tensor, spec: Conv1dSpec) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "conv1d: input must be [channels, len]");
    assert_eq!(
        w.shape().rank(),
        3,
        "conv1d: weight must be [out_ch, in_ch, kernel]"
    );
    let (c_in, len) = (x.dims()[0], x.dims()[1]);
    let (c_out, w_cin, kernel) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    assert_eq!(c_in, w_cin, "conv1d: channel mismatch");
    assert_eq!(b.dims(), &[c_out], "conv1d: bias must be [out_ch]");
    let out_len = spec
        .out_len(len, kernel)
        .unwrap_or_else(|| panic!("conv1d: input of length {len} too short for kernel {kernel}"));

    let mut y = Tensor::zeros(&[c_out, out_len]);
    let xd = x.data();
    let wd = w.data();
    let yd = y.data_mut();
    for oc in 0..c_out {
        let bias = b.data()[oc];
        for ot in 0..out_len {
            let mut acc = bias;
            let start = ot * spec.stride;
            for ic in 0..c_in {
                let x_row = &xd[ic * len..(ic + 1) * len];
                let w_row = &wd[(oc * c_in + ic) * kernel..(oc * c_in + ic + 1) * kernel];
                for (kk, &wv) in w_row.iter().enumerate() {
                    let pos = start + kk * spec.dilation;
                    // `pos` indexes the padded signal; map back to x.
                    if pos >= spec.padding {
                        let xi = pos - spec.padding;
                        if xi < len {
                            acc += wv * x_row[xi];
                        }
                    }
                }
            }
            yd[oc * out_len + ot] = acc;
        }
    }
    y
}

/// Transposes `[c_out, out_len]` into `[out_len, c_out]`.
fn transpose_cl(dy: &Tensor) -> Tensor {
    let (c_out, out_len) = (dy.dims()[0], dy.dims()[1]);
    let mut t = Tensor::zeros(&[out_len, c_out]);
    let td = t.data_mut();
    let dd = dy.data();
    for oc in 0..c_out {
        for ot in 0..out_len {
            td[ot * c_out + oc] = dd[oc * out_len + ot];
        }
    }
    t
}

/// Gradient of the convolution output w.r.t. its input.
///
/// `dy` is `[out_ch, out_len]`; returns `dx` of shape `[in_ch, len]`.
/// Lowered to GEMM + [`col2im`].
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn conv1d_backward_input(dy: &Tensor, w: &Tensor, spec: Conv1dSpec, len: usize) -> Tensor {
    let (c_out, _out_len) = (dy.dims()[0], dy.dims()[1]);
    let (w_cout, c_in, kernel) = (w.dims()[0], w.dims()[1], w.dims()[2]);
    assert_eq!(c_out, w_cout, "conv1d_backward_input: channel mismatch");
    let dy_t = transpose_cl(dy); // [out_len, c_out]
    let w2d = w.reshape(&[c_out, c_in * kernel]);
    let dcols = dy_t.matmul(&w2d); // [out_len, ck]
    col2im(&dcols, c_in, len, kernel, spec)
}

/// Gradients of the convolution output w.r.t. weight and bias.
///
/// Returns `(dw, db)` with the same shapes as `w` and `b`.
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn conv1d_backward_params(
    dy: &Tensor,
    x: &Tensor,
    spec: Conv1dSpec,
    kernel: usize,
) -> (Tensor, Tensor) {
    let cols = im2col(x, kernel, spec);
    conv1d_backward_params_cols(dy, &cols, x.dims()[0], kernel)
}

/// Weight/bias gradients from a precomputed im2col matrix.
pub fn conv1d_backward_params_cols(
    dy: &Tensor,
    cols: &Tensor,
    c_in: usize,
    kernel: usize,
) -> (Tensor, Tensor) {
    let (c_out, out_len) = (dy.dims()[0], dy.dims()[1]);
    assert_eq!(cols.dims()[0], out_len, "conv1d params: out_len mismatch");
    let dy_t = transpose_cl(dy); // [out_len, c_out]
                                 // dW2d = dy_tᵀ · cols → [c_out, ck]
    let dw2d = dy_t.matmul_tn(cols);
    let dw = dw2d.reshape(&[c_out, c_in, kernel]);
    let mut db = Tensor::zeros(&[c_out]);
    for oc in 0..c_out {
        db.data_mut()[oc] = dy.data()[oc * out_len..(oc + 1) * out_len].iter().sum();
    }
    (dw, db)
}

/// Average pooling over the time axis of a `[channels, len]` tensor.
///
/// # Panics
///
/// Panics if `kernel == 0` or the input is shorter than `kernel`.
pub fn avg_pool1d(x: &Tensor, kernel: usize, stride: usize) -> Tensor {
    assert!(kernel > 0, "avg_pool1d: kernel must be positive");
    let (c, len) = (x.dims()[0], x.dims()[1]);
    assert!(len >= kernel, "avg_pool1d: input shorter than kernel");
    let out_len = (len - kernel) / stride + 1;
    let mut y = Tensor::zeros(&[c, out_len]);
    let scale = 1.0 / kernel as f32;
    for ch in 0..c {
        let row = &x.data()[ch * len..(ch + 1) * len];
        for ot in 0..out_len {
            let start = ot * stride;
            let sum: f32 = row[start..start + kernel].iter().sum();
            y.data_mut()[ch * out_len + ot] = sum * scale;
        }
    }
    y
}

/// Backward pass of [`avg_pool1d`]: distributes each output gradient evenly
/// over its pooling window.
pub fn avg_pool1d_backward(dy: &Tensor, kernel: usize, stride: usize, len: usize) -> Tensor {
    let (c, out_len) = (dy.dims()[0], dy.dims()[1]);
    let mut dx = Tensor::zeros(&[c, len]);
    let scale = 1.0 / kernel as f32;
    for ch in 0..c {
        for ot in 0..out_len {
            let g = dy.data()[ch * out_len + ot] * scale;
            let start = ot * stride;
            for i in start..start + kernel {
                dx.data_mut()[ch * len + i] += g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_len_formula() {
        let s = Conv1dSpec::patch(10);
        assert_eq!(s.out_len(300, 10), Some(30));
        assert_eq!(s.out_len(9, 10), None);
        let d = Conv1dSpec {
            stride: 1,
            padding: 2,
            dilation: 2,
        };
        // extent = (3-1)*2+1 = 5; (10 + 4 - 5)/1 + 1 = 10 (same padding)
        assert_eq!(d.out_len(10, 3), Some(10));
    }

    #[test]
    fn identity_kernel() {
        // A single-channel kernel [1.0] with stride 1 reproduces the input.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        let b = Tensor::zeros(&[1]);
        let y = conv1d_forward(&x, &w, &b, Conv1dSpec::default());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn moving_sum_with_stride() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 6]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 1, 2]);
        let b = Tensor::zeros(&[1]);
        let y = conv1d_forward(
            &x,
            &w,
            &b,
            Conv1dSpec {
                stride: 2,
                padding: 0,
                dilation: 1,
            },
        );
        assert_eq!(y.dims(), &[1, 3]);
        assert_eq!(y.data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn bias_is_added() {
        let x = Tensor::zeros(&[1, 3]);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1]);
        let b = Tensor::from_vec(vec![0.5], &[1]);
        let y = conv1d_forward(&x, &w, &b, Conv1dSpec::default());
        assert!(y.data().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn multi_channel_sum() {
        // Two input channels, kernel that sums them.
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[2, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 2, 1]);
        let b = Tensor::zeros(&[1]);
        let y = conv1d_forward(&x, &w, &b, Conv1dSpec::default());
        assert_eq!(y.data(), &[11.0, 22.0]);
    }

    #[test]
    fn dilation_skips_samples() {
        let x = Tensor::from_vec(vec![1.0, 100.0, 2.0, 100.0, 3.0], &[1, 5]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 1, 3]);
        let b = Tensor::zeros(&[1]);
        let y = conv1d_forward(
            &x,
            &w,
            &b,
            Conv1dSpec {
                stride: 1,
                padding: 0,
                dilation: 2,
            },
        );
        assert_eq!(y.dims(), &[1, 1]);
        assert_eq!(y.data(), &[6.0]);
    }

    #[test]
    fn padding_zero_extends() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 1, 3]);
        let b = Tensor::zeros(&[1]);
        let y = conv1d_forward(
            &x,
            &w,
            &b,
            Conv1dSpec {
                stride: 1,
                padding: 1,
                dilation: 1,
            },
        );
        // padded signal: [0 1 2 0] -> windows [0 1 2], [1 2 0]
        assert_eq!(y.data(), &[3.0, 3.0]);
    }

    /// Finite-difference check of both backward functions.
    #[test]
    fn gradients_match_finite_difference() {
        let spec = Conv1dSpec {
            stride: 2,
            padding: 1,
            dilation: 2,
        };
        let (c_in, c_out, kernel, len) = (2usize, 3usize, 3usize, 9usize);
        let mut seed = 42u64;
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            ((seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let x = Tensor::from_fn(&[c_in, len], |_| next());
        let w = Tensor::from_fn(&[c_out, c_in, kernel], |_| next());
        let b = Tensor::from_fn(&[c_out], |_| next());

        // Scalar objective: sum of conv outputs weighted by fixed dy.
        let y0 = conv1d_forward(&x, &w, &b, spec);
        let dy = Tensor::from_fn(y0.dims(), |_| next());
        let objective = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv1d_forward(x, w, b, spec).mul(&dy).sum()
        };

        let dx = conv1d_backward_input(&dy, &w, spec, len);
        let (dw, db) = conv1d_backward_params(&dy, &x, spec, kernel);

        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (objective(&xp, &w, &b) - objective(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 1e-2,
                "dx[{idx}]: fd={num} analytic={}",
                dx.data()[idx]
            );
        }
        for idx in 0..w.len() {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (objective(&x, &wp, &b) - objective(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (num - dw.data()[idx]).abs() < 1e-2,
                "dw[{idx}]: fd={num} analytic={}",
                dw.data()[idx]
            );
        }
        for idx in 0..b.len() {
            let mut bp = b.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = b.clone();
            bm.data_mut()[idx] -= eps;
            let num = (objective(&x, &w, &bp) - objective(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (num - db.data()[idx]).abs() < 1e-2,
                "db[{idx}]: fd={num} analytic={}",
                db.data()[idx]
            );
        }
    }

    #[test]
    fn gemm_lowering_matches_direct() {
        let mut seed = 7u64;
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            ((seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        for spec in [
            Conv1dSpec::default(),
            Conv1dSpec::patch(5),
            Conv1dSpec {
                stride: 2,
                padding: 2,
                dilation: 1,
            },
            Conv1dSpec {
                stride: 1,
                padding: 4,
                dilation: 4,
            },
        ] {
            let x = Tensor::from_fn(&[3, 24], |_| next());
            let w = Tensor::from_fn(&[5, 3, 3], |_| next());
            let b = Tensor::from_fn(&[5], |_| next());
            let direct = conv1d_forward_direct(&x, &w, &b, spec);
            let gemm = conv1d_forward(&x, &w, &b, spec);
            assert!(
                gemm.allclose(&direct, 1e-4),
                "GEMM path diverges from direct conv for {spec:?}"
            );
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), C> == <x, col2im(C)> for all C (adjoint property).
        let spec = Conv1dSpec {
            stride: 2,
            padding: 1,
            dilation: 2,
        };
        let mut seed = 13u64;
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            ((seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let x = Tensor::from_fn(&[2, 15], |_| next());
        let cols = im2col(&x, 3, spec);
        let c = Tensor::from_fn(cols.dims(), |_| next());
        let lhs = cols.mul(&c).sum();
        let back = col2im(&c, 2, 15, 3, spec);
        let rhs = x.mul(&back).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn avg_pool_and_backward() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 4]);
        let y = avg_pool1d(&x, 2, 2);
        assert_eq!(y.data(), &[2.0, 6.0]);
        let dy = Tensor::ones(&[1, 2]);
        let dx = avg_pool1d_backward(&dy, 2, 2, 4);
        assert_eq!(dx.data(), &[0.5, 0.5, 0.5, 0.5]);
    }
}
