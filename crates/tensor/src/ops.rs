//! Neural-network math primitives with analytic derivatives.
//!
//! Everything here is a pure function over [`Tensor`]s; stateful layers with
//! caches live in `bioformer-nn`. Row-wise operations treat the **last** axis
//! of a 2-D tensor as the feature/key axis, matching the attention and
//! LayerNorm semantics of the paper.

use crate::tensor::Tensor;

/// Numerical-stability epsilon used by [`layernorm_forward`].
pub const LAYERNORM_EPS: f32 = 1e-5;

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_COEF: f32 = 0.044_715;

/// Row-wise softmax of a 2-D tensor (softmax over the last axis).
///
/// Uses the max-subtraction trick for numerical stability.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// In-place variant of [`softmax_rows`]: overwrites `x` with its row-wise
/// softmax without allocating. Used by the inference hot path (attention
/// scores are scratch tensors that die immediately after the `A·V`
/// product, so there is nothing worth preserving).
///
/// Bit-identical to [`softmax_rows`] — the out-of-place form is implemented
/// on top of this one.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows_in_place(x: &mut Tensor) {
    assert_eq!(x.shape().rank(), 2, "softmax_rows requires a 2-D tensor");
    let n = x.dims()[1];
    softmax_rows_slice(x.data_mut(), n);
}

/// Slice-level softmax over consecutive `n`-wide rows of `data`, in place.
/// The zero-allocation primitive behind [`softmax_rows_in_place`], usable
/// on raw scratch buffers (attention scores in the arena hot path).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `n` (for `n > 0`).
pub fn softmax_rows_slice(data: &mut [f32], n: usize) {
    if data.is_empty() {
        return;
    }
    assert!(
        n > 0 && data.len().is_multiple_of(n),
        "softmax: rows must be n-wide"
    );
    for row in data.chunks_mut(n) {
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Backward pass of [`softmax_rows`].
///
/// Given `y = softmax(x)` and upstream gradient `dy`, returns
/// `dx_i = y_i (dy_i − Σ_j dy_j y_j)` per row.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let (m, n) = (y.dims()[0], y.dims()[1]);
    let mut dx = Tensor::zeros(&[m, n]);
    for r in 0..m {
        let yr = &y.data()[r * n..(r + 1) * n];
        let dyr = &dy.data()[r * n..(r + 1) * n];
        let dot: f32 = yr.iter().zip(dyr.iter()).map(|(a, b)| a * b).sum();
        let dxr = &mut dx.data_mut()[r * n..(r + 1) * n];
        for i in 0..n {
            dxr[i] = yr[i] * (dyr[i] - dot);
        }
    }
    dx
}

/// Row-wise log-softmax (numerically stable), used by the cross-entropy
/// loss.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().rank(), 2, "log_softmax_rows requires 2-D");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    let mut out = x.clone();
    for r in 0..m {
        let row = &mut out.data_mut()[r * n..(r + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let logsum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for v in row.iter_mut() {
            *v -= logsum;
        }
    }
    out
}

/// GELU activation (tanh approximation, as used by ViT/BERT implementations
/// and approximated in integer form by I-BERT).
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)).tanh())
}

/// Derivative of [`gelu`] w.r.t. its input.
pub fn gelu_grad(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// ReLU activation.
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of [`relu`] (0 at the kink, matching common DL frameworks).
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Per-row statistics cached by [`layernorm_forward`] and consumed by
/// [`layernorm_backward`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalised activations `x̂` (same shape as the input).
    pub xhat: Tensor,
    /// Per-row `1/√(var+ε)`.
    pub inv_std: Vec<f32>,
}

/// Row-wise LayerNorm: `y = γ ⊙ (x − μ)/√(σ² + ε) + β`.
///
/// Returns the output and the cache needed for the backward pass.
///
/// # Panics
///
/// Panics if `x` is not 2-D or `gamma`/`beta` do not match the row width.
pub fn layernorm_forward(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> (Tensor, LayerNormCache) {
    assert_eq!(x.shape().rank(), 2, "layernorm requires a 2-D tensor");
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(gamma.dims(), &[n], "layernorm: gamma must be [features]");
    assert_eq!(beta.dims(), &[n], "layernorm: beta must be [features]");
    let mut y = Tensor::zeros(&[m, n]);
    let mut xhat = Tensor::zeros(&[m, n]);
    let mut inv_std = vec![0.0f32; m];
    for (r, inv_std_row) in inv_std.iter_mut().enumerate() {
        let row = &x.data()[r * n..(r + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let istd = 1.0 / (var + LAYERNORM_EPS).sqrt();
        *inv_std_row = istd;
        for (i, &xv) in row.iter().enumerate() {
            let xh = (xv - mean) * istd;
            xhat.data_mut()[r * n + i] = xh;
            y.data_mut()[r * n + i] = gamma.data()[i] * xh + beta.data()[i];
        }
    }
    (y, LayerNormCache { xhat, inv_std })
}

/// Inference-only LayerNorm into a caller-provided buffer: computes the
/// same `y = γ ⊙ (x − μ)/√(σ² + ε) + β` as [`layernorm_forward`] but skips
/// the backward cache (`x̂`, `1/σ`) entirely and writes into `out`, so the
/// serving hot path allocates nothing.
///
/// `out` may be a recycled scratch buffer of any prior content; every
/// element is overwritten. Bit-identical to the `y` returned by
/// [`layernorm_forward`].
///
/// # Panics
///
/// Panics if `x.len()` is not a multiple of `gamma.len()`, if `beta` and
/// `gamma` disagree, or if `out.len() != x.len()`.
pub fn layernorm_rows_into(x: &[f32], gamma: &[f32], beta: &[f32], out: &mut [f32]) {
    let n = gamma.len();
    assert_eq!(beta.len(), n, "layernorm: beta must match gamma");
    assert!(n > 0, "layernorm: zero feature width");
    assert_eq!(x.len() % n, 0, "layernorm: rows must be gamma-width");
    assert_eq!(out.len(), x.len(), "layernorm: out size mismatch");
    let m = x.len() / n;
    for r in 0..m {
        let row = &x[r * n..(r + 1) * n];
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let istd = 1.0 / (var + LAYERNORM_EPS).sqrt();
        let out_row = &mut out[r * n..(r + 1) * n];
        for i in 0..n {
            out_row[i] = gamma[i] * ((row[i] - mean) * istd) + beta[i];
        }
    }
}

/// Backward pass of [`layernorm_forward`].
///
/// Returns `(dx, dgamma, dbeta)`.
///
/// # Panics
///
/// Panics on shape mismatch between `dy` and the cached activations.
pub fn layernorm_backward(
    dy: &Tensor,
    gamma: &Tensor,
    cache: &LayerNormCache,
) -> (Tensor, Tensor, Tensor) {
    let (m, n) = (dy.dims()[0], dy.dims()[1]);
    assert_eq!(
        cache.xhat.dims(),
        dy.dims(),
        "layernorm backward shape mismatch"
    );
    let mut dx = Tensor::zeros(&[m, n]);
    let mut dgamma = Tensor::zeros(&[n]);
    let mut dbeta = Tensor::zeros(&[n]);
    for r in 0..m {
        let dyr = &dy.data()[r * n..(r + 1) * n];
        let xhr = &cache.xhat.data()[r * n..(r + 1) * n];
        // Parameter gradients accumulate across rows.
        for i in 0..n {
            dgamma.data_mut()[i] += dyr[i] * xhr[i];
            dbeta.data_mut()[i] += dyr[i];
        }
        // dxhat = dy * gamma; dx = istd*(dxhat - mean(dxhat) - xhat*mean(dxhat*xhat))
        let mut mean_dxhat = 0.0f32;
        let mut mean_dxhat_xhat = 0.0f32;
        for i in 0..n {
            let dxh = dyr[i] * gamma.data()[i];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * xhr[i];
        }
        mean_dxhat /= n as f32;
        mean_dxhat_xhat /= n as f32;
        let istd = cache.inv_std[r];
        let dxr = &mut dx.data_mut()[r * n..(r + 1) * n];
        for i in 0..n {
            let dxh = dyr[i] * gamma.data()[i];
            dxr[i] = istd * (dxh - mean_dxhat - xhr[i] * mean_dxhat_xhat);
        }
    }
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Tensor::from_fn(dims, |_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = filled(&[4, 7], 1).scale(3.0);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            assert!(y.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_in_place_is_bit_identical() {
        let x = filled(&[5, 9], 21).scale(4.0);
        let want = softmax_rows(&x);
        let mut got = x.clone();
        softmax_rows_in_place(&mut got);
        assert!(got.allclose(&want, 0.0), "in-place softmax diverges");
    }

    #[test]
    fn layernorm_into_is_bit_identical_to_forward() {
        let x = filled(&[4, 12], 22).scale(3.0);
        let gamma = filled(&[12], 23).map(|v| v + 1.0);
        let beta = filled(&[12], 24);
        let (want, _) = layernorm_forward(&x, &gamma, &beta);
        let mut out = vec![f32::NAN; x.len()];
        layernorm_rows_into(x.data(), gamma.data(), beta.data(), &mut out);
        assert_eq!(out, want.data(), "arena layernorm diverges from forward");
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = filled(&[2, 5], 2);
        let shifted = x.map(|v| v + 100.0);
        assert!(softmax_rows(&x).allclose(&softmax_rows(&shifted), 1e-5));
    }

    #[test]
    fn softmax_handles_large_values() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0, -1000.0], &[1, 3]);
        let y = softmax_rows(&x);
        assert!(!y.has_non_finite());
        assert!((y.data()[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn softmax_backward_matches_fd() {
        let x = filled(&[3, 5], 3);
        let dy = filled(&[3, 5], 4);
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&y, &dy);
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = softmax_rows(&xp).mul(&dy).sum();
            let fm = softmax_rows(&xm).mul(&dy).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 5e-3,
                "dx[{idx}]: fd={num} analytic={}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = filled(&[3, 6], 5);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for i in 0..x.len() {
            assert!((ls.data()[i].exp() - s.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn gelu_known_values() {
        assert!((gelu(0.0)).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Asymptotics: gelu(x) ≈ x for large x, ≈ 0 for very negative x.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_fd() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let eps = 1e-3;
            let num = (gelu(x + eps) - gelu(x - eps)) / (2.0 * eps);
            assert!(
                (num - gelu_grad(x)).abs() < 1e-3,
                "x={x}: fd={num} analytic={}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    fn layernorm_normalises_rows() {
        let x = filled(&[3, 16], 6).scale(5.0);
        let gamma = Tensor::ones(&[16]);
        let beta = Tensor::zeros(&[16]);
        let (y, _) = layernorm_forward(&x, &gamma, &beta);
        for r in 0..3 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_affine_params_apply() {
        let x = filled(&[2, 4], 7);
        let gamma = Tensor::full(&[4], 2.0);
        let beta = Tensor::full(&[4], 1.0);
        let (y, _) = layernorm_forward(&x, &gamma, &beta);
        let (y0, _) = layernorm_forward(&x, &Tensor::ones(&[4]), &Tensor::zeros(&[4]));
        let expect = y0.scale(2.0).map(|v| v + 1.0);
        assert!(y.allclose(&expect, 1e-5));
    }

    #[test]
    fn layernorm_backward_matches_fd() {
        let x = filled(&[3, 8], 8);
        let gamma = filled(&[8], 9).map(|v| v + 1.0);
        let beta = filled(&[8], 10);
        let dy = filled(&[3, 8], 11);

        let (_, cache) = layernorm_forward(&x, &gamma, &beta);
        let (dx, dgamma, dbeta) = layernorm_backward(&dy, &gamma, &cache);

        let objective = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            layernorm_forward(x, g, b).0.mul(&dy).sum()
        };
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (objective(&xp, &gamma, &beta) - objective(&xm, &gamma, &beta)) / (2.0 * eps);
            assert!(
                (num - dx.data()[idx]).abs() < 2e-2,
                "dx[{idx}]: fd={num} analytic={}",
                dx.data()[idx]
            );
        }
        for idx in 0..gamma.len() {
            let mut gp = gamma.clone();
            gp.data_mut()[idx] += eps;
            let mut gm = gamma.clone();
            gm.data_mut()[idx] -= eps;
            let num = (objective(&x, &gp, &beta) - objective(&x, &gm, &beta)) / (2.0 * eps);
            assert!(
                (num - dgamma.data()[idx]).abs() < 1e-2,
                "dgamma[{idx}]: fd={num} analytic={}",
                dgamma.data()[idx]
            );
        }
        for idx in 0..beta.len() {
            let mut bp = beta.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = beta.clone();
            bm.data_mut()[idx] -= eps;
            let num = (objective(&x, &gamma, &bp) - objective(&x, &gamma, &bm)) / (2.0 * eps);
            assert!(
                (num - dbeta.data()[idx]).abs() < 1e-2,
                "dbeta[{idx}]: fd={num} analytic={}",
                dbeta.data()[idx]
            );
        }
    }
}
