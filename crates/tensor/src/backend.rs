//! The `ComputeBackend` seam: every fp32 and int8 GEMM in the nn/quant
//! layers routes through this trait instead of naming a kernel directly.
//!
//! # Why a seam
//!
//! bio1's GEMMs are small and skinny; which tile wins is a property of the
//! *shape*, not of the layer that issues it. Putting kernel choice behind
//! an object-safe trait makes it a data-plane detail: layers hold an
//! `Arc<dyn ComputeBackend>` (the process-wide [`default_backend`] unless a
//! model installs its own), ask it for a [`GemmPlan`] per shape, pack
//! weights at the plan's panel width, and run whatever driver the plan
//! names. A [`crate::tune::TuneTable`] produced by the load-time autotuner
//! slots in as [`PackedCpuBackend::with_table`]; a future GPU or simulated
//! accelerator backend is just another impl behind the same `Arc`.
//!
//! # Determinism contract
//!
//! Plans only ever steer *which* kernel runs — never the arithmetic
//! contract. All int8 drivers are bit-identical to each other; all fp32
//! drivers keep per-element ascending-`k` accumulation (the
//! [`Fp32Kernel::Generic`] driver is bit-identical to the portable tile;
//! FMA/AVX-512 tiles agree within the usual 1e-4 the SIMD layer already
//! guarantees).

use std::sync::{Arc, OnceLock};

use crate::pack::{self, Epilogue, PackedB, MAX_MR, MAX_NR, MR, NR};
use crate::qgemm::{self, FixedMultiplier};
use crate::tune::TuneTable;

/// Register-tile geometry of a packed fp32 GEMM: `mr` rows of `A` per
/// block, `nr` columns per packed panel, and a `kc` contraction-blocking
/// depth (`0` = unblocked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpec {
    /// Row-block height (`1..=`[`MAX_MR`]).
    pub mr: usize,
    /// Panel width (`1..=`[`MAX_NR`]).
    pub nr: usize,
    /// `k`-blocking depth; `0` disables blocking.
    pub kc: usize,
}

impl TileSpec {
    /// The fixed geometry the SIMD microkernels implement.
    pub const DEFAULT: TileSpec = TileSpec {
        mr: MR,
        nr: NR,
        kc: 0,
    };

    /// `true` for the geometry the fixed SIMD tiles can run.
    pub fn is_default(self) -> bool {
        self == Self::DEFAULT
    }
}

impl Default for TileSpec {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Which fp32 driver a plan runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fp32Kernel {
    /// The process-wide [`bioformer_simd::kernels`] dispatch (the
    /// pre-seam behavior).
    #[default]
    Dispatch,
    /// Pin the portable scalar tile.
    Portable,
    /// Pin the AVX2/FMA tile (clamped to the portable tile where
    /// unsupported).
    Fma,
    /// Pin the AVX-512F tile (clamped to the best supported tile).
    Avx512,
    /// The safe variable-geometry driver ([`pack::gemm_packed_generic`]) —
    /// the only kernel valid at a non-default [`TileSpec`].
    Generic,
}

impl Fp32Kernel {
    /// Short stable name (used in tuning-table JSON).
    pub fn name(self) -> &'static str {
        match self {
            Fp32Kernel::Dispatch => "dispatch",
            Fp32Kernel::Portable => "portable",
            Fp32Kernel::Fma => "fma",
            Fp32Kernel::Avx512 => "avx512",
            Fp32Kernel::Generic => "generic",
        }
    }

    /// Inverse of [`Fp32Kernel::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "dispatch" => Fp32Kernel::Dispatch,
            "portable" => Fp32Kernel::Portable,
            "fma" => Fp32Kernel::Fma,
            "avx512" => Fp32Kernel::Avx512,
            "generic" => Fp32Kernel::Generic,
            _ => return None,
        })
    }

    /// The fixed `MR×NR` SIMD tile this kernel pins, if any (`None` for
    /// [`Fp32Kernel::Generic`]). Unsupported tiers clamp downward exactly
    /// as [`bioformer_simd::select`] does.
    fn tile(self) -> Option<bioformer_simd::Fp32TileFn> {
        use bioformer_simd::{select, Tier};
        match self {
            Fp32Kernel::Dispatch => Some(bioformer_simd::kernels().fp32_tile),
            Fp32Kernel::Portable => Some(select(Some(Tier::Portable)).fp32_tile),
            Fp32Kernel::Fma => Some(select(Some(Tier::Avx2)).fp32_tile),
            Fp32Kernel::Avx512 => Some(select(Some(Tier::Vnni)).fp32_tile),
            Fp32Kernel::Generic => None,
        }
    }
}

/// Which int8 driver a plan runs. All choices are bit-identical; this is
/// purely a performance decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Int8Kernel {
    /// Whole-GEMM where available and in-cap, else the dispatched tile
    /// (the pre-seam behavior).
    #[default]
    Dispatch,
    /// Force the VNNI whole-GEMM kernel (falls back to the tile path when
    /// the kernel is absent or the shape exceeds its caps).
    WholeGemm,
    /// Force the dispatched `1×QNR` dot tile driven by the generic loop.
    Tile,
}

impl Int8Kernel {
    /// Short stable name (used in tuning-table JSON).
    pub fn name(self) -> &'static str {
        match self {
            Int8Kernel::Dispatch => "dispatch",
            Int8Kernel::WholeGemm => "whole",
            Int8Kernel::Tile => "tile",
        }
    }

    /// Inverse of [`Int8Kernel::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "dispatch" => Int8Kernel::Dispatch,
            "whole" => Int8Kernel::WholeGemm,
            "tile" => Int8Kernel::Tile,
            _ => return None,
        })
    }
}

/// A resolved fp32 execution plan: tile geometry plus the kernel that
/// drives it. Packed buffers carry the plan they were packed for
/// ([`PackedB::plan`]), so a buffer can never meet the wrong driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GemmPlan {
    /// Tile geometry (decides the packed layout).
    pub spec: TileSpec,
    /// Driver for this geometry.
    pub kernel: Fp32Kernel,
}

impl GemmPlan {
    /// Builds a plan, normalising invalid combinations: any non-default
    /// geometry must run the generic driver, and the generic driver clamps
    /// its geometry into the driver's supported range.
    pub fn new(spec: TileSpec, kernel: Fp32Kernel) -> Self {
        let spec = TileSpec {
            mr: spec.mr.clamp(1, MAX_MR),
            nr: spec.nr.clamp(1, MAX_NR),
            kc: spec.kc,
        };
        let kernel = if spec.is_default() {
            kernel
        } else {
            Fp32Kernel::Generic
        };
        GemmPlan { spec, kernel }
    }

    /// Packed-buffer length for a `k×n` right-hand side under this plan.
    pub fn packed_len(&self, k: usize, n: usize) -> usize {
        pack::packed_len_nr(k, n, self.spec.nr)
    }

    /// Compact human-readable form, e.g. `fma@4x16` or `generic@8x32/k64`.
    pub fn describe(&self) -> String {
        let TileSpec { mr, nr, kc } = self.spec;
        if kc == 0 {
            format!("{}@{}x{}", self.kernel.name(), mr, nr)
        } else {
            format!("{}@{}x{}/k{}", self.kernel.name(), mr, nr, kc)
        }
    }
}

/// Runs a packed fp32 GEMM under an explicit plan. `packed` must be the
/// image packed at the plan's panel width.
///
/// # Panics
///
/// Panics if any buffer length disagrees with `(m, k, n)` under the plan.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_plan(
    plan: GemmPlan,
    a: &[f32],
    m: usize,
    k: usize,
    packed: &[f32],
    n: usize,
    out: &mut [f32],
    epi: Epilogue<'_>,
) {
    if plan.spec.is_default() {
        if let Some(tile) = plan.kernel.tile() {
            pack::gemm_packed_with(tile, a, m, k, packed, n, out, epi);
            return;
        }
    }
    let TileSpec { mr, nr, kc } = plan.spec;
    pack::gemm_packed_generic(a, m, k, packed, n, out, epi, mr, nr, kc);
}

/// The kernel-selection seam every nn/quant compute call site goes
/// through.
///
/// Object-safe by design: models hold `Arc<dyn ComputeBackend>` and the
/// serving layer treats backend choice as replica configuration. The
/// `plan_*` methods answer "how should this shape run"; the rest execute
/// under a plan. `m = 0` in a plan query means "row count varies call to
/// call" (linear layers pack weights before they see a batch).
pub trait ComputeBackend: Send + Sync + std::fmt::Debug {
    /// Short stable identifier, e.g. `"packed-cpu"`.
    fn name(&self) -> &'static str;

    /// One-line description of the backend's configuration (tuning state
    /// included) — surfaced in `EngineStats`.
    fn describe(&self) -> String {
        self.name().to_string()
    }

    /// The fp32 plan for an `[m,k]·[k,n]` GEMM (`m = 0` = unknown/varies).
    fn plan_fp32(&self, m: usize, k: usize, n: usize) -> GemmPlan;

    /// The int8 kernel for an `[m,k]·[n,k]ᵀ` GEMM (`m = 0` = unknown).
    fn plan_int8(&self, m: usize, k: usize, n: usize) -> Int8Kernel;

    /// Packs a row-major `B[k, n]` for the given plan into `dst`
    /// (length `plan.packed_len(k, n)`).
    fn pack_b_into(&self, plan: GemmPlan, b: &[f32], k: usize, n: usize, dst: &mut [f32]) {
        let _ = self;
        pack::pack_b_nr(b, k, n, plan.spec.nr, dst);
    }

    /// Packs a row-major `Bᵀ`-layout `bt[n, k]` for the given plan into
    /// `dst` (length `plan.packed_len(k, n)`).
    fn pack_b_t_into(&self, plan: GemmPlan, bt: &[f32], n: usize, k: usize, dst: &mut [f32]) {
        let _ = self;
        pack::pack_b_t_nr(bt, n, k, plan.spec.nr, dst);
    }

    /// Packs a weight matrix in `Bᵀ` layout (`[out, in]`) once, under the
    /// plan for its shape — the entry point behind the per-layer
    /// `OnceLock<PackedB>` caches.
    fn pack_weight(&self, bt: &[f32], n: usize, k: usize) -> PackedB {
        PackedB::from_b_t_with(self.plan_fp32(0, k, n), bt, n, k)
    }

    /// Packs a row-major `B[k, n]` once, under the plan for its shape.
    fn pack_weight_b(&self, b: &[f32], k: usize, n: usize) -> PackedB {
        PackedB::from_b_with(self.plan_fp32(0, k, n), b, k, n)
    }

    /// `out = epi(A · B)` against a pre-packed weight; the plan travels
    /// with the [`PackedB`].
    fn gemm(&self, a: &[f32], m: usize, packed: &PackedB, out: &mut [f32], epi: Epilogue<'_>) {
        let _ = self;
        gemm_with_plan(
            packed.plan(),
            a,
            m,
            packed.k(),
            packed.as_slice(),
            packed.n(),
            out,
            epi,
        );
    }

    /// `out = epi(A · B)` against a raw packed slice (arena-owned buffers
    /// on the attention path, where nothing outlives the call).
    #[allow(clippy::too_many_arguments)]
    fn gemm_with(
        &self,
        plan: GemmPlan,
        a: &[f32],
        m: usize,
        k: usize,
        packed: &[f32],
        n: usize,
        out: &mut [f32],
        epi: Epilogue<'_>,
    ) {
        let _ = self;
        gemm_with_plan(plan, a, m, k, packed, n, out, epi);
    }

    /// Matrix–vector product `out[m] = A[m,k] · v[k]`.
    fn matvec(&self, a: &[f32], m: usize, k: usize, v: &[f32], out: &mut [f32]) {
        let _ = self;
        assert_eq!(a.len(), m * k, "matvec: A size");
        assert_eq!(v.len(), k, "matvec: v size");
        assert_eq!(out.len(), m, "matvec: out size");
        for (i, o) in out.iter_mut().enumerate() {
            *o = crate::matmul::dot_unrolled(&a[i * k..(i + 1) * k], v);
        }
    }

    /// int8 `C[m,n] = A[m,k] · B[n,k]ᵀ (+ bias)` with i32 accumulators,
    /// under this backend's plan for the shape. Bit-identical across all
    /// plans.
    #[allow(clippy::too_many_arguments)] // mirrors the qgemm driver signature
    fn qgemm_i32(
        &self,
        a: &[i8],
        b: &[i8],
        bias: Option<&[i32]>,
        m: usize,
        k: usize,
        n: usize,
        out: &mut [i32],
    ) {
        match self.plan_int8(m, k, n) {
            Int8Kernel::Dispatch => qgemm::qgemm_i32_into(a, b, bias, m, k, n, out),
            Int8Kernel::WholeGemm => {
                if !qgemm::qgemm_i32_whole_into(a, b, bias, m, k, n, out) {
                    qgemm::qgemm_i32_tile_into(a, b, bias, m, k, n, out);
                }
            }
            Int8Kernel::Tile => qgemm::qgemm_i32_tile_into(a, b, bias, m, k, n, out),
        }
    }

    /// int8 GEMM with fused requantization to int8, under this backend's
    /// plan for the shape. Bit-identical across all plans.
    #[allow(clippy::too_many_arguments)]
    fn qgemm_requant(
        &self,
        a: &[i8],
        b: &[i8],
        bias: Option<&[i32]>,
        m: usize,
        k: usize,
        n: usize,
        mult: FixedMultiplier,
        zero_point: i32,
        out: &mut [i8],
    ) {
        match self.plan_int8(m, k, n) {
            Int8Kernel::Dispatch => {
                qgemm::qgemm_requant_into(a, b, bias, m, k, n, mult, zero_point, out)
            }
            Int8Kernel::WholeGemm => {
                if !qgemm::qgemm_requant_whole_into(a, b, bias, m, k, n, mult, zero_point, out) {
                    qgemm::qgemm_requant_tile_into(a, b, bias, m, k, n, mult, zero_point, out);
                }
            }
            Int8Kernel::Tile => {
                qgemm::qgemm_requant_tile_into(a, b, bias, m, k, n, mult, zero_point, out)
            }
        }
    }
}

/// The packed-CPU backend: the pre-seam compute path, optionally steered
/// by a tuning table.
///
/// Without a table every plan query returns the defaults, which makes the
/// refactor bit-identical to the code it replaced. With a table
/// ([`PackedCpuBackend::with_table`]) plan queries consult the table's
/// per-shape winners (exact `(m,k,n)` first, then the `m = 0` wildcard).
#[derive(Debug, Default)]
pub struct PackedCpuBackend {
    table: Option<TuneTable>,
}

impl PackedCpuBackend {
    /// Untuned backend (default plans everywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Backend steered by an autotuned table. Tables recorded under a
    /// different CPU tier are ignored wholesale (their timings are
    /// meaningless here) — the backend then behaves as untuned.
    pub fn with_table(table: TuneTable) -> Self {
        let table = table.matches_current_tier().then_some(table);
        PackedCpuBackend { table }
    }

    /// The tuning table in effect, if any.
    pub fn table(&self) -> Option<&TuneTable> {
        self.table.as_ref()
    }
}

impl ComputeBackend for PackedCpuBackend {
    fn name(&self) -> &'static str {
        "packed-cpu"
    }

    fn describe(&self) -> String {
        match &self.table {
            Some(t) => format!("packed-cpu[{}]", t.summary()),
            None => "packed-cpu[default]".to_string(),
        }
    }

    fn plan_fp32(&self, m: usize, k: usize, n: usize) -> GemmPlan {
        self.table
            .as_ref()
            .and_then(|t| t.lookup_fp32(m, k, n))
            .unwrap_or_default()
    }

    fn plan_int8(&self, m: usize, k: usize, n: usize) -> Int8Kernel {
        self.table
            .as_ref()
            .and_then(|t| t.lookup_int8(m, k, n))
            .unwrap_or_default()
    }
}

/// The process-wide default backend: an untuned [`PackedCpuBackend`].
/// Layers that are not handed an explicit backend use this one, which
/// keeps their behavior identical to the pre-seam code.
pub fn default_backend() -> Arc<dyn ComputeBackend> {
    static DEFAULT: OnceLock<Arc<PackedCpuBackend>> = OnceLock::new();
    DEFAULT
        .get_or_init(|| Arc::new(PackedCpuBackend::new()))
        .clone() as Arc<dyn ComputeBackend>
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32)
                    - 0.5
            })
            .collect()
    }

    #[test]
    fn default_backend_runs_default_plans() {
        let b = default_backend();
        assert_eq!(b.plan_fp32(31, 64, 256), GemmPlan::default());
        assert_eq!(b.plan_int8(31, 64, 256), Int8Kernel::Dispatch);
        assert_eq!(b.name(), "packed-cpu");
    }

    #[test]
    fn plan_new_forces_generic_off_default_spec() {
        let spec = TileSpec {
            mr: 8,
            nr: 32,
            kc: 0,
        };
        let plan = GemmPlan::new(spec, Fp32Kernel::Fma);
        assert_eq!(plan.kernel, Fp32Kernel::Generic);
        let plan = GemmPlan::new(TileSpec::DEFAULT, Fp32Kernel::Fma);
        assert_eq!(plan.kernel, Fp32Kernel::Fma);
    }

    #[test]
    fn backend_gemm_matches_direct_call_for_every_plan() {
        let (m, k, n) = (5, 33, 19);
        let a = filled(m * k, 3);
        let wt = filled(n * k, 4); // [out, in] weight layout
        let bias = filled(n, 5);
        let backend = PackedCpuBackend::new();
        let reference = {
            let packed = backend.pack_weight(&wt, n, k);
            let mut out = vec![f32::NAN; m * n];
            backend.gemm(&a, m, &packed, &mut out, Epilogue::Bias(&bias));
            out
        };
        for plan in [
            GemmPlan::new(TileSpec::DEFAULT, Fp32Kernel::Portable),
            GemmPlan::new(
                TileSpec {
                    mr: 8,
                    nr: 32,
                    kc: 16,
                },
                Fp32Kernel::Generic,
            ),
            GemmPlan::new(
                TileSpec {
                    mr: 2,
                    nr: 8,
                    kc: 0,
                },
                Fp32Kernel::Generic,
            ),
        ] {
            let packed = PackedB::from_b_t_with(plan, &wt, n, k);
            let mut out = vec![f32::NAN; m * n];
            backend.gemm(&a, m, &packed, &mut out, Epilogue::Bias(&bias));
            for (got, want) in out.iter().zip(reference.iter()) {
                assert!(
                    (got - want).abs() <= 1e-4,
                    "plan {} diverges",
                    plan.describe()
                );
            }
        }
    }

    #[test]
    fn backend_matvec_matches_tensor_matvec() {
        let (m, k) = (7, 29);
        let a = filled(m * k, 6);
        let v = filled(k, 7);
        let mut out = vec![0.0f32; m];
        default_backend().matvec(&a, m, k, &v, &mut out);
        let want = crate::matmul::matvec(
            &crate::tensor::Tensor::from_vec(a.clone(), &[m, k]),
            &crate::tensor::Tensor::from_vec(v.clone(), &[k]),
        );
        assert_eq!(out, want.data());
    }

    #[test]
    fn backend_qgemm_bit_exact_across_int8_plans() {
        #[derive(Debug)]
        struct Forced(Int8Kernel);
        impl ComputeBackend for Forced {
            fn name(&self) -> &'static str {
                "forced"
            }
            fn plan_fp32(&self, _m: usize, _k: usize, _n: usize) -> GemmPlan {
                GemmPlan::default()
            }
            fn plan_int8(&self, _m: usize, _k: usize, _n: usize) -> Int8Kernel {
                self.0
            }
        }
        let (m, k, n) = (6, 31, 17);
        let a: Vec<i8> = (0..m * k).map(|i| (i % 255) as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| ((i * 7) % 251) as i8 ^ 3).collect();
        let bias: Vec<i32> = (0..n as i32).collect();
        let mut reference = vec![0i32; m * n];
        Forced(Int8Kernel::Tile).qgemm_i32(&a, &b, Some(&bias), m, k, n, &mut reference);
        for kernel in [Int8Kernel::Dispatch, Int8Kernel::WholeGemm] {
            let mut out = vec![0i32; m * n];
            Forced(kernel).qgemm_i32(&a, &b, Some(&bias), m, k, n, &mut out);
            assert_eq!(out, reference, "{kernel:?} not bit-exact");
        }
    }
}
