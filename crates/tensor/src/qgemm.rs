//! int8 GEMM drivers (i8 operands, i32 accumulation) and the gemmlowp-style
//! fixed-point requantizer.
//!
//! These used to live in `bioformer-quant::kernels`; they moved down here so
//! the [`crate::backend::ComputeBackend`] seam can route **both** precisions
//! through one trait without a circular crate dependency (`quant` re-exports
//! them, so its public API is unchanged and there is exactly one definition
//! of each kernel — the bit-exactness contracts cannot fork).
//!
//! Integer addition is associative, so every driver here — the dispatched
//! path, the forced whole-GEMM path and the forced tile path — is
//! **bit-for-bit identical** for any input; kernel selection is purely a
//! performance decision, which is what makes int8 autotuning safe.

use bioformer_simd::QdotTileFn;

/// Output columns processed per blocked-kernel step (one `A`-row pass feeds
/// this many `i32` register accumulators).
pub const QNR: usize = 4;

// The tile width is shared with the microkernel crate; a mismatch would
// scramble the B-tile slicing, so pin it at compile time.
const _: () = assert!(QNR == bioformer_simd::QNR);

/// A real multiplier encoded as `mantissa × 2^(−31−shift)` with
/// `mantissa ∈ [2^30, 2^31)`.
///
/// Integer kernels accumulate in i32 at scale `s_in = s_a · s_w`; the
/// result must be rescaled to the next layer's activation scale `s_out`.
/// The real multiplier `M = s_in / s_out` is encoded once, offline, as a
/// normalised int32 mantissa and a right-shift; on the hot path only i64
/// multiply + rounding shift are used — exactly what ships on the MCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMultiplier {
    /// Normalised mantissa.
    pub mantissa: i32,
    /// Additional right shift applied after the high-mul.
    pub shift: i32,
}

impl FixedMultiplier {
    /// Encodes a positive real multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not finite and positive.
    pub fn encode(m: f64) -> Self {
        assert!(
            m.is_finite() && m > 0.0,
            "multiplier must be positive, got {m}"
        );
        assert!(m < 1e9, "multiplier {m} out of supported range");
        let mut shift = 0i32;
        let mut frac = m;
        // Normalise into [0.5, 1).
        while frac >= 1.0 {
            frac /= 2.0;
            shift -= 1;
        }
        while frac < 0.5 {
            frac *= 2.0;
            shift += 1;
        }
        let mut mantissa = (frac * (1i64 << 31) as f64).round() as i64;
        if mantissa == (1i64 << 31) {
            mantissa /= 2;
            shift -= 1;
        }
        FixedMultiplier {
            mantissa: mantissa as i32,
            shift,
        }
    }

    /// The real value this encodes (for tests/diagnostics).
    pub fn to_real(self) -> f64 {
        self.mantissa as f64 * 2f64.powi(-31 - self.shift)
    }

    /// Applies the multiplier to an i32 accumulator with round-to-nearest.
    ///
    /// The full product is kept in i64 and rounded with a **single**
    /// combined shift of `31 + shift` bits — splitting the shift (high-mul
    /// then post-shift) would amplify the high-mul's rounding error by
    /// `2^|shift|` for multipliers above 1.
    pub fn apply(self, acc: i32) -> i32 {
        let prod = acc as i64 * self.mantissa as i64;
        let s = 31 + self.shift; // ≥ 1: encode() keeps shift > -31
        debug_assert!(s >= 1, "unsupported multiplier magnitude");
        // Round-half-up works for both signs under arithmetic shift.
        ((prod + (1i64 << (s - 1))) >> s) as i32
    }

    /// Requantizes an accumulator to int8 with a zero-point, saturating.
    pub fn requantize_to_i8(self, acc: i32, zero_point: i32) -> i8 {
        (self.apply(acc) + zero_point).clamp(-128, 127) as i8
    }
}

/// The blocked int8 GEMM core: for row `a_row` (`k` codes) and the column
/// tile starting at `B` row `j`, accumulates `QNR` dot products via the
/// given SIMD tile and hands each `(local_column, accumulator)` pair to
/// `store`.
#[inline(always)]
fn qdot_tile(
    tile: QdotTileFn,
    a_row: &[i8],
    b: &[i8],
    k: usize,
    j: usize,
    jw: usize,
    mut store: impl FnMut(usize, i32),
) {
    let mut acc = [0i32; QNR];
    tile(a_row, &b[j * k..(j + jw) * k], k, jw, &mut acc);
    for (lj, &s) in acc.iter().enumerate().take(jw) {
        store(lj, s);
    }
}

fn check_qgemm_dims(a: &[i8], b: &[i8], bias: Option<&[i32]>, m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "qgemm: A size");
    assert_eq!(b.len(), n * k, "qgemm: B size");
    if let Some(bias) = bias {
        assert_eq!(bias.len(), n, "qgemm: bias size");
    }
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ (+ bias)` into a caller-provided accumulator
/// buffer, using the runtime-dispatched kernel table (whole-GEMM where the
/// CPU has one and the shape fits its caps, the dispatched dot tile
/// otherwise).
///
/// `B` is row-major `[n, k]` — the natural layout both for linear-layer
/// weights (`[out, in]`) and for attention keys.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn qgemm_i32_into(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    if qgemm_i32_whole_into(a, b, bias, m, k, n, out) {
        return;
    }
    // Resolve the dispatched tile once per GEMM, not once per tile.
    qgemm_i32_into_with(
        bioformer_simd::kernels().qdot_tile,
        a,
        b,
        bias,
        m,
        k,
        n,
        out,
    );
}

/// The forced whole-GEMM path of [`qgemm_i32_into`]: runs the VNNI
/// whole-GEMM kernel when the dispatch table carries one and `(k, n)` fit
/// its caps, returning `true`; returns `false` (leaving `out` untouched)
/// when unavailable so the caller can fall back to the tile path.
/// Bit-identical to the tile path whenever it runs.
///
/// # Panics
///
/// Panics on inconsistent dimensions (when the path is taken).
pub fn qgemm_i32_whole_into(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) -> bool {
    let kernels = bioformer_simd::kernels();
    let Some(qg) = kernels.qgemm_i32 else {
        return false;
    };
    if n > bioformer_simd::QGEMM_N_CAP || k > bioformer_simd::QGEMM_K_CAP {
        return false;
    }
    check_qgemm_dims(a, b, bias, m, k, n);
    assert_eq!(out.len(), m * n, "qgemm: out size");
    qg(a, b, m, k, n, out);
    if let Some(bias) = bias {
        if n > 0 {
            for row in out.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                }
            }
        }
    }
    true
}

/// The forced tile path of [`qgemm_i32_into`]: always drives the dispatched
/// `1×QNR` dot tile from the generic loop, never the whole-GEMM kernel.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
pub fn qgemm_i32_tile_into(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    qgemm_i32_into_with(
        bioformer_simd::kernels().qdot_tile,
        a,
        b,
        bias,
        m,
        k,
        n,
        out,
    );
}

/// [`qgemm_i32_into`] with an explicitly chosen dot tile — the hook
/// benches and tier-parity tests use to pin a [`bioformer_simd`] tier
/// (e.g. the scalar oracle) instead of the runtime-dispatched one.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_i32_into_with(
    tile: QdotTileFn,
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    check_qgemm_dims(a, b, bias, m, k, n);
    assert_eq!(out.len(), m * n, "qgemm: out size");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0usize;
        while j < n {
            let jw = (n - j).min(QNR);
            qdot_tile(tile, a_row, b, k, j, jw, |lj, s| {
                out_row[j + lj] = s + bias.map_or(0, |bias| bias[j + lj]);
            });
            j += jw;
        }
    }
}

/// int8 GEMM with the requantization **fused into the store loop**: each
/// accumulator tile is scaled to the output grid while still in registers —
/// no intermediate `Vec<i32>` is materialised. Bit-for-bit identical to
/// [`qgemm_i32_into`] followed by per-element requantization. Uses the
/// runtime-dispatched kernel table.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_requant_into(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    mult: FixedMultiplier,
    zero_point: i32,
    out: &mut [i8],
) {
    if qgemm_requant_whole_into(a, b, bias, m, k, n, mult, zero_point, out) {
        return;
    }
    qgemm_requant_tile_into(a, b, bias, m, k, n, mult, zero_point, out);
}

/// The forced whole-GEMM path of [`qgemm_requant_into`]: returns `false`
/// (leaving `out` untouched) when the whole-GEMM kernel is unavailable or
/// the shape exceeds its caps.
///
/// # Panics
///
/// Panics on inconsistent dimensions (when the path is taken).
#[allow(clippy::too_many_arguments)]
pub fn qgemm_requant_whole_into(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    mult: FixedMultiplier,
    zero_point: i32,
    out: &mut [i8],
) -> bool {
    let kernels = bioformer_simd::kernels();
    let Some(qg) = kernels.qgemm_i32 else {
        return false;
    };
    if n > bioformer_simd::QGEMM_N_CAP || k > bioformer_simd::QGEMM_K_CAP {
        return false;
    }
    check_qgemm_dims(a, b, bias, m, k, n);
    assert_eq!(out.len(), m * n, "qgemm: out size");
    // The whole-GEMM kernel produces i32 accumulators; requantize from a
    // fixed stack scratch, a few rows at a time, so the fused entry point
    // stays allocation-free.
    const SCRATCH_ROWS: usize = 4;
    let mut scratch = [0i32; SCRATCH_ROWS * bioformer_simd::QGEMM_N_CAP];
    let mut i = 0usize;
    while i < m {
        let mr = (m - i).min(SCRATCH_ROWS);
        qg(&a[i * k..(i + mr) * k], b, mr, k, n, &mut scratch[..mr * n]);
        for r in 0..mr {
            let out_row = &mut out[(i + r) * n..(i + r + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let acc = scratch[r * n + j] + bias.map_or(0, |bias| bias[j]);
                *o = mult.requantize_to_i8(acc, zero_point);
            }
        }
        i += mr;
    }
    true
}

/// The forced tile path of [`qgemm_requant_into`]: drives the dispatched
/// dot tile with the requantization fused into its store callback.
///
/// # Panics
///
/// Panics on inconsistent dimensions.
#[allow(clippy::too_many_arguments)]
pub fn qgemm_requant_tile_into(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
    mult: FixedMultiplier,
    zero_point: i32,
    out: &mut [i8],
) {
    check_qgemm_dims(a, b, bias, m, k, n);
    assert_eq!(out.len(), m * n, "qgemm: out size");
    let tile = bioformer_simd::kernels().qdot_tile;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0usize;
        while j < n {
            let jw = (n - j).min(QNR);
            qdot_tile(tile, a_row, b, k, j, jw, |lj, s| {
                let acc = s + bias.map_or(0, |bias| bias[j + lj]);
                out_row[j + lj] = mult.requantize_to_i8(acc, zero_point);
            });
            j += jw;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qfilled(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as i8
            })
            .collect()
    }

    /// The forced whole-GEMM and forced tile paths must be bit-identical
    /// wherever both run (the whole path may simply be unavailable).
    #[test]
    fn forced_kernel_paths_agree_bit_exactly() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (6, 31, 17), (5, 64, 32)] {
            let a = qfilled(m * k, 1 + m as u64);
            let b = qfilled(n * k, 2 + n as u64);
            let bias: Vec<i32> = (0..n as i32).map(|j| j * 7 - 3).collect();
            let mut tile = vec![0i32; m * n];
            qgemm_i32_tile_into(&a, &b, Some(&bias), m, k, n, &mut tile);
            let mut dispatch = vec![0i32; m * n];
            qgemm_i32_into(&a, &b, Some(&bias), m, k, n, &mut dispatch);
            assert_eq!(tile, dispatch, "shape ({m},{k},{n})");
            let mut whole = vec![0i32; m * n];
            if qgemm_i32_whole_into(&a, &b, Some(&bias), m, k, n, &mut whole) {
                assert_eq!(tile, whole, "whole-GEMM diverges at ({m},{k},{n})");
            }
            let mult = FixedMultiplier::encode(0.0173);
            let mut rq_tile = vec![0i8; m * n];
            qgemm_requant_tile_into(&a, &b, Some(&bias), m, k, n, mult, -5, &mut rq_tile);
            let mut rq_dispatch = vec![0i8; m * n];
            qgemm_requant_into(&a, &b, Some(&bias), m, k, n, mult, -5, &mut rq_dispatch);
            assert_eq!(rq_tile, rq_dispatch, "requant shape ({m},{k},{n})");
        }
    }

    #[test]
    fn whole_path_reports_unavailable_beyond_caps() {
        let k = bioformer_simd::QGEMM_K_CAP + 1;
        let a = qfilled(k, 9);
        let b = qfilled(k, 10);
        let mut out = vec![0i32; 1];
        assert!(!qgemm_i32_whole_into(&a, &b, None, 1, k, 1, &mut out));
    }
}
