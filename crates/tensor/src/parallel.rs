//! A tiny scoped-thread work splitter.
//!
//! The training workloads in this repository are dominated by medium-size
//! GEMMs ([`crate::matmul`]) and per-sample loops; both parallelise trivially
//! over an index range. Rather than pulling in a work-stealing runtime, this
//! module splits a range into contiguous chunks and runs them on scoped
//! `std::thread`s, which keeps the crate dependency-free and deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum amount of "work units" (caller-defined, roughly FLOPs) below which
/// [`parallel_chunks`] runs serially to avoid thread-spawn overhead.
///
/// Thread spawns cost ~0.25 ms in containerised environments, so fan-out
/// only pays for GEMMs worth tens of milliseconds of single-thread time.
/// Most parallelism in this workspace happens one level up (the trainer
/// shards mini-batches, the evaluator shards datasets); kernel-level
/// threading is a fallback for large single-call GEMMs.
pub const PARALLEL_WORK_THRESHOLD: usize = 1 << 26;

static MAX_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the number of worker threads used by [`parallel_chunks`].
///
/// `0` restores the default (the machine's available parallelism, capped at
/// 16). Intended for benchmarks that need single-threaded baselines and for
/// tests.
pub fn set_max_threads(n: usize) {
    MAX_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Serialises tests that mutate the process-global thread override; tests
/// run concurrently in one binary, so unsynchronised [`set_max_threads`]
/// calls race. Lock via [`override_guard`] before overriding.
#[cfg(test)]
pub(crate) static OVERRIDE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Takes the override lock and sets `n`; the previous default (0) is
/// restored when the guard drops, even on panic.
#[cfg(test)]
pub(crate) fn override_guard(n: usize) -> impl Drop {
    // The guard's only job is to hold the lock until drop.
    struct Guard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            set_max_threads(0);
        }
    }
    let lock = OVERRIDE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_max_threads(n);
    Guard(lock)
}

/// The machine's available parallelism, queried once and cached —
/// `std::thread::available_parallelism` performs cgroup filesystem reads
/// that cost ~0.7 ms per call on some container kernels, far too slow for
/// per-kernel dispatch decisions.
pub fn hardware_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Returns the number of worker threads [`parallel_chunks`] will use.
pub fn max_threads() -> usize {
    let forced = MAX_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    hardware_threads().min(16)
}

/// Splits `0..n` into contiguous chunks and invokes `body(start, end)` for
/// each, potentially on multiple scoped threads.
///
/// `work` is an estimate of the total work in arbitrary units; when it is
/// below [`PARALLEL_WORK_THRESHOLD`] (or only one thread is available) the
/// call is executed serially on the current thread.
///
/// The closure receives disjoint `[start, end)` ranges covering `0..n`
/// exactly once, so it may safely write to disjoint output slices (callers
/// split buffers with `split_at_mut` or equivalent).
pub fn parallel_chunks<F>(n: usize, work: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = max_threads();
    if threads <= 1 || work < PARALLEL_WORK_THRESHOLD || n == 1 {
        body(0, n);
        return;
    }
    let chunks = threads.min(n);
    let chunk_size = n.div_ceil(chunks);
    std::thread::scope(|scope| {
        let body = &body;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk_size).min(n);
            scope.spawn(move || body(start, end));
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn covers_range_exactly_once_serial() {
        let seen = Mutex::new(vec![0u32; 10]);
        parallel_chunks(10, 1, |s, e| {
            let mut v = seen.lock().unwrap();
            for i in s..e {
                v[i] += 1;
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn covers_range_exactly_once_parallel() {
        let seen = Mutex::new(vec![0u32; 1000]);
        parallel_chunks(1000, PARALLEL_WORK_THRESHOLD * 2, |s, e| {
            let mut v = seen.lock().unwrap();
            for i in s..e {
                v[i] += 1;
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn zero_items_is_noop() {
        parallel_chunks(0, usize::MAX, |_, _| panic!("must not be called"));
    }

    #[test]
    fn thread_override() {
        let guard = override_guard(3);
        assert_eq!(max_threads(), 3);
        drop(guard);
        assert!(max_threads() >= 1);
    }
}
