//! Shape-specialized kernel autotuning.
//!
//! bio1's GEMMs are tiny and skinny (31×64·64×64 attention projections,
//! 31-row FFN mats), where tile choice dominates and no single fixed tile
//! wins everywhere. At model-load time [`tune`] benchmarks a small grid of
//! candidates per distinct `(m, k, n)` in the model — fp32 tiles ×
//! {FMA, AVX-512, portable} plus variable-geometry generic tiles, int8 ×
//! {whole-GEMM, dot tile} — and records the winners in a [`TuneTable`]
//! that a [`crate::backend::PackedCpuBackend`] consults on every plan
//! query.
//!
//! Design points:
//!
//! * **Only wins count.** A non-default candidate must beat the default by
//!   more than [`TUNE_MARGIN_PCT`]% of its time to enter the table;
//!   anything closer is measurement noise and the default stays (with the
//!   reason logged). The table stores non-default winners only.
//! * **Injectable cost.** [`tune_with_cost`] takes the timing function as
//!   an argument, so tests drive the tuner with a deterministic synthetic
//!   cost model and assert byte-identical tables; [`tune`] plugs in
//!   wall-clock measurement.
//! * **Tier-keyed persistence.** [`TuneTable::to_json`] /
//!   [`TuneTable::from_json`] round-trip the table through a hand-rolled
//!   JSON form (no serde in this workspace) keyed by the CPU tier name, so
//!   serving restarts reload the table instead of re-tuning — and a table
//!   recorded on a different tier is rejected instead of trusted.
//! * **`BIOFORMER_TUNE=off`** (or `0`/`false`) short-circuits [`tune`] to
//!   an empty table, forcing the default tile everywhere — deterministic
//!   CI runs regardless of host timing noise.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::backend::{gemm_with_plan, Fp32Kernel, GemmPlan, Int8Kernel, TileSpec};
use crate::pack::{self, Epilogue};
use crate::qgemm;

/// Required win margin for a non-default candidate, in percent of the
/// default's time: below this the default is kept.
pub const TUNE_MARGIN_PCT: f64 = 5.0;

/// Row count used to benchmark wildcard (`m = 0`) shapes — linear layers
/// pack weights before any batch exists, so their plans are tuned at a
/// representative token-row count (one bio1 window's 31 tokens, rounded
/// to a tile multiple).
pub const WILDCARD_M: usize = 32;

/// One GEMM shape occurring in a model, as reported by
/// `gemm_shapes()`-style inventories. `m = 0` means the row count varies
/// call to call (a wildcard plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GemmShape {
    /// Output rows (`0` = varies).
    pub m: usize,
    /// Contraction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// `true` for the int8 path, `false` for fp32.
    pub int8: bool,
}

impl GemmShape {
    /// An fp32 GEMM shape.
    pub fn fp32(m: usize, k: usize, n: usize) -> Self {
        GemmShape {
            m,
            k,
            n,
            int8: false,
        }
    }

    /// An int8 GEMM shape.
    pub fn int8(m: usize, k: usize, n: usize) -> Self {
        GemmShape {
            m,
            k,
            n,
            int8: true,
        }
    }
}

/// One kernel candidate under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Candidate {
    /// An fp32 plan.
    Fp32(GemmPlan),
    /// An int8 kernel choice.
    Int8(Int8Kernel),
}

impl Candidate {
    /// Compact name for logs.
    pub fn describe(&self) -> String {
        match self {
            Candidate::Fp32(p) => p.describe(),
            Candidate::Int8(k) => k.name().to_string(),
        }
    }
}

/// `true` unless `BIOFORMER_TUNE` is set to `off`/`0`/`false`.
///
/// Read on every call (not cached): tuning happens a handful of times per
/// process, and tests flip the variable.
pub fn tuning_enabled() -> bool {
    match std::env::var("BIOFORMER_TUNE") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false"
        ),
        Err(_) => true,
    }
}

/// The per-shape winners the autotuner found, keyed by the CPU tier they
/// were measured on. Stores only shapes where a **non-default** candidate
/// won; everything else falls through to the default plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TuneTable {
    tier: String,
    fp32: BTreeMap<(usize, usize, usize), GemmPlan>,
    int8: BTreeMap<(usize, usize, usize), Int8Kernel>,
    log: Vec<String>,
}

impl TuneTable {
    /// An empty table for the given tier name.
    pub fn new(tier: impl Into<String>) -> Self {
        TuneTable {
            tier: tier.into(),
            ..Default::default()
        }
    }

    /// An empty table for the process's current CPU tier.
    pub fn for_current_tier() -> Self {
        Self::new(bioformer_simd::kernels().name)
    }

    /// The CPU tier this table was measured on.
    pub fn tier(&self) -> &str {
        &self.tier
    }

    /// `true` when the table's tier matches the process's dispatch tier.
    pub fn matches_current_tier(&self) -> bool {
        self.tier == bioformer_simd::kernels().name
    }

    /// Records a non-default fp32 winner.
    pub fn insert_fp32(&mut self, m: usize, k: usize, n: usize, plan: GemmPlan) {
        self.fp32.insert((m, k, n), plan);
    }

    /// Records a non-default int8 winner.
    pub fn insert_int8(&mut self, m: usize, k: usize, n: usize, kernel: Int8Kernel) {
        self.int8.insert((m, k, n), kernel);
    }

    /// Appends a tuning-decision log line.
    pub fn push_log(&mut self, line: impl Into<String>) {
        self.log.push(line.into());
    }

    /// The fp32 winner for a shape: exact `(m, k, n)` first, then the
    /// `m = 0` wildcard. `None` = use the default plan.
    pub fn lookup_fp32(&self, m: usize, k: usize, n: usize) -> Option<GemmPlan> {
        self.fp32
            .get(&(m, k, n))
            .or_else(|| self.fp32.get(&(0, k, n)))
            .copied()
    }

    /// The int8 winner for a shape (exact, then wildcard).
    pub fn lookup_int8(&self, m: usize, k: usize, n: usize) -> Option<Int8Kernel> {
        self.int8
            .get(&(m, k, n))
            .or_else(|| self.int8.get(&(0, k, n)))
            .copied()
    }

    /// Number of shapes with a non-default winner.
    pub fn tuned_shapes(&self) -> usize {
        self.fp32.len() + self.int8.len()
    }

    /// The decision log — one line per shape examined, including why the
    /// default was kept where it was.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// One-line form for stats surfaces, e.g.
    /// `tier=avx2+fma, 3 tuned shapes`.
    pub fn summary(&self) -> String {
        format!("tier={}, {} tuned shapes", self.tier, self.tuned_shapes())
    }

    /// Iterates non-default fp32 winners as `((m, k, n), plan)`.
    pub fn fp32_entries(&self) -> impl Iterator<Item = (&(usize, usize, usize), &GemmPlan)> {
        self.fp32.iter()
    }

    /// Iterates non-default int8 winners as `((m, k, n), kernel)`.
    pub fn int8_entries(&self) -> impl Iterator<Item = (&(usize, usize, usize), &Int8Kernel)> {
        self.int8.iter()
    }

    /// Serialises the table as JSON (hand-rolled writer — this workspace
    /// vendors no serde). Entries are emitted in sorted key order, so the
    /// output is byte-deterministic for a given table.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\n  \"tier\": ");
        json::write_string(&mut s, &self.tier);
        s.push_str(",\n  \"fp32\": [");
        for (i, (&(m, k, n), plan)) in self.fp32.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            let TileSpec { mr, nr, kc } = plan.spec;
            s.push_str(&format!(
                "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"kernel\": \"{}\", \
                 \"mr\": {mr}, \"nr\": {nr}, \"kc\": {kc}}}",
                plan.kernel.name()
            ));
        }
        if !self.fp32.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"int8\": [");
        for (i, (&(m, k, n), kernel)) in self.int8.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            s.push_str(&format!(
                "{{\"m\": {m}, \"k\": {k}, \"n\": {n}, \"kernel\": \"{}\"}}",
                kernel.name()
            ));
        }
        if !self.int8.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"log\": [");
        for (i, line) in self.log.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            json::write_string(&mut s, line);
        }
        if !self.log.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses a table previously written by [`TuneTable::to_json`].
    pub fn from_json(src: &str) -> Result<TuneTable, String> {
        let mut p = json::Parser::new(src);
        let mut table = TuneTable::default();
        p.skip_ws();
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            if p.try_consume(b'}') {
                break;
            }
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "tier" => table.tier = p.parse_string()?,
                "fp32" => {
                    p.parse_array(|p| {
                        let e = parse_entry(p, true)?;
                        table.fp32.insert((e.0, e.1, e.2), e.3);
                        Ok(())
                    })?;
                }
                "int8" => {
                    p.parse_array(|p| {
                        let e = parse_entry(p, false)?;
                        table.int8.insert((e.0, e.1, e.2), e.4);
                        Ok(())
                    })?;
                }
                "log" => {
                    p.parse_array(|p| {
                        let line = p.parse_string()?;
                        table.log.push(line);
                        Ok(())
                    })?;
                }
                other => return Err(format!("tune table: unknown key {other:?}")),
            }
            p.skip_ws();
            if !p.try_consume(b',') {
                p.skip_ws();
                p.expect(b'}')?;
                break;
            }
        }
        Ok(table)
    }

    /// Writes the table to a file as JSON.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a table from a JSON file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<TuneTable, String> {
        let src = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("tune table {}: {e}", path.as_ref().display()))?;
        Self::from_json(&src)
    }
}

/// One parsed table entry: `(m, k, n, fp32 plan, int8 kernel)` — the side
/// not being parsed holds its default.
fn parse_entry(
    p: &mut json::Parser<'_>,
    fp32: bool,
) -> Result<(usize, usize, usize, GemmPlan, Int8Kernel), String> {
    let (mut m, mut k, mut n) = (0usize, 0usize, 0usize);
    let mut spec = TileSpec::DEFAULT;
    let mut fp32_kernel = Fp32Kernel::Dispatch;
    let mut int8_kernel = Int8Kernel::Dispatch;
    p.skip_ws();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        if p.try_consume(b'}') {
            break;
        }
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "m" => m = p.parse_usize()?,
            "k" => k = p.parse_usize()?,
            "n" => n = p.parse_usize()?,
            "mr" => spec.mr = p.parse_usize()?,
            "nr" => spec.nr = p.parse_usize()?,
            "kc" => spec.kc = p.parse_usize()?,
            "kernel" => {
                let name = p.parse_string()?;
                if fp32 {
                    fp32_kernel = Fp32Kernel::from_name(&name)
                        .ok_or_else(|| format!("unknown fp32 kernel {name:?}"))?;
                } else {
                    int8_kernel = Int8Kernel::from_name(&name)
                        .ok_or_else(|| format!("unknown int8 kernel {name:?}"))?;
                }
            }
            other => return Err(format!("tune entry: unknown key {other:?}")),
        }
        p.skip_ws();
        if !p.try_consume(b',') {
            p.skip_ws();
            p.expect(b'}')?;
            break;
        }
    }
    Ok((m, k, n, GemmPlan::new(spec, fp32_kernel), int8_kernel))
}

/// The fp32 candidate grid for the current dispatch tier: the default
/// dispatched plan first, then the fixed SIMD tiles the tier can actually
/// run, then a handful of variable-geometry generic tiles. Respects the
/// `BIOFORMER_SIMD` cap (candidates come from the capped dispatch table).
pub fn fp32_candidates() -> Vec<GemmPlan> {
    let name = bioformer_simd::kernels().name;
    let mut v = vec![GemmPlan::default()];
    if !bioformer_simd::kernels().portable {
        // On a SIMD tier the dispatched tile is FMA or AVX-512; the
        // portable tile is a genuinely different candidate.
        v.push(GemmPlan::new(TileSpec::DEFAULT, Fp32Kernel::Portable));
        if name.contains("avx512") {
            // Dispatch resolves to AVX-512; FMA is the distinct middle tier.
            v.push(GemmPlan::new(TileSpec::DEFAULT, Fp32Kernel::Fma));
        }
    }
    for (mr, nr, kc) in [(8, 16, 0), (4, 32, 0), (8, 32, 0), (2, 16, 0), (4, 16, 64)] {
        v.push(GemmPlan::new(TileSpec { mr, nr, kc }, Fp32Kernel::Generic));
    }
    v
}

/// The int8 candidate grid for a `(k, n)` shape: the default dispatch
/// first, plus the forced dot-tile path when the tier has a whole-GEMM
/// kernel the dispatch would otherwise pick (on tiers without one the two
/// are the same code path, so there is nothing to race).
pub fn int8_candidates(k: usize, n: usize) -> Vec<Int8Kernel> {
    let mut v = vec![Int8Kernel::Dispatch];
    let whole_available = bioformer_simd::kernels().qgemm_i32.is_some()
        && n <= bioformer_simd::QGEMM_N_CAP
        && k <= bioformer_simd::QGEMM_K_CAP;
    if whole_available {
        v.push(Int8Kernel::Tile);
    }
    v
}

/// Autotunes the given shapes with wall-clock measurement, returning the
/// winners table for the current CPU tier. Honors `BIOFORMER_TUNE=off`
/// (returns an empty, all-default table with the reason logged).
pub fn tune(shapes: &[GemmShape]) -> TuneTable {
    if !tuning_enabled() {
        let mut t = TuneTable::for_current_tier();
        t.push_log("tuning disabled by BIOFORMER_TUNE; default plans everywhere");
        return t;
    }
    tune_with_cost(shapes, &mut measure)
}

/// [`tune`] with an injectable cost function (seconds per GEMM; lower
/// wins). The first candidate per shape is always the default; a
/// non-default candidate enters the table only by beating the default by
/// more than [`TUNE_MARGIN_PCT`]%. Duplicate shapes are tuned once.
/// Deterministic for a deterministic cost function.
pub fn tune_with_cost(
    shapes: &[GemmShape],
    cost: &mut dyn FnMut(&Candidate, &GemmShape) -> f64,
) -> TuneTable {
    let mut table = TuneTable::for_current_tier();
    let mut seen = std::collections::BTreeSet::new();
    for &shape in shapes {
        if !seen.insert(shape) {
            continue;
        }
        let GemmShape { m, k, n, int8 } = shape;
        let label = if int8 { "int8" } else { "fp32" };
        let candidates: Vec<Candidate> = if int8 {
            int8_candidates(k, n)
                .into_iter()
                .map(Candidate::Int8)
                .collect()
        } else {
            fp32_candidates().into_iter().map(Candidate::Fp32).collect()
        };
        let costs: Vec<f64> = candidates.iter().map(|c| cost(c, &shape)).collect();
        let default_cost = costs[0];
        let (best_idx, &best_cost) = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("candidate grid is never empty");
        let needed = default_cost * (1.0 - TUNE_MARGIN_PCT / 100.0);
        if best_idx != 0 && best_cost < needed {
            let winner = candidates[best_idx];
            let gain = (1.0 - best_cost / default_cost) * 100.0;
            table.push_log(format!(
                "{label} {m}x{k}x{n}: {} won ({:.1}% over default)",
                winner.describe(),
                gain
            ));
            match winner {
                Candidate::Fp32(plan) => table.insert_fp32(m, k, n, plan),
                Candidate::Int8(kernel) => table.insert_int8(m, k, n, kernel),
            }
        } else if candidates.len() == 1 {
            table.push_log(format!(
                "{label} {m}x{k}x{n}: default kept (no distinct candidates on tier {})",
                table.tier
            ));
        } else {
            table.push_log(format!(
                "{label} {m}x{k}x{n}: default kept (best alternative {} within {:.0}% margin)",
                candidates[best_idx].describe(),
                TUNE_MARGIN_PCT
            ));
        }
    }
    table
}

/// Deterministic pseudo-random fp32 fill for benchmarking inputs.
fn filled_f32(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn filled_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as i8
        })
        .collect()
}

/// Wall-clock cost of one candidate at one shape: packs once, warms the
/// kernel, then takes the best of three timed batches (batch size scaled
/// to the GEMM's FLOP count so tiny shapes are not measured at
/// nanosecond granularity).
fn measure(candidate: &Candidate, shape: &GemmShape) -> f64 {
    let m = if shape.m == 0 { WILDCARD_M } else { shape.m };
    let (k, n) = (shape.k, shape.n);
    let work = crate::matmul::gemm_work(m, n, k).max(1);
    let reps = (20_000_000 / work).clamp(3, 400);
    match *candidate {
        Candidate::Fp32(plan) => {
            let a = filled_f32(m * k, 11);
            let b = filled_f32(k * n, 13);
            let mut packed = vec![0.0f32; plan.packed_len(k, n)];
            pack::pack_b_nr(&b, k, n, plan.spec.nr, &mut packed);
            let mut out = vec![0.0f32; m * n];
            let mut run = || gemm_with_plan(plan, &a, m, k, &packed, n, &mut out, Epilogue::None);
            run();
            best_of_three(reps, &mut run)
        }
        Candidate::Int8(kernel) => {
            let a = filled_i8(m * k, 17);
            let b = filled_i8(n * k, 19);
            let mut out = vec![0i32; m * n];
            let mut run = || match kernel {
                Int8Kernel::Dispatch => qgemm::qgemm_i32_into(&a, &b, None, m, k, n, &mut out),
                Int8Kernel::WholeGemm => {
                    if !qgemm::qgemm_i32_whole_into(&a, &b, None, m, k, n, &mut out) {
                        qgemm::qgemm_i32_tile_into(&a, &b, None, m, k, n, &mut out);
                    }
                }
                Int8Kernel::Tile => qgemm::qgemm_i32_tile_into(&a, &b, None, m, k, n, &mut out),
            };
            run();
            best_of_three(reps, &mut run)
        }
    }
}

/// Runs `reps` iterations three times and returns the best per-iteration
/// seconds — minimum-of-batches rejects scheduler noise the way the
/// criterion shim's IQR pass does, at a fraction of the cost.
fn best_of_three(reps: usize, run: &mut dyn FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            run();
        }
        best = best.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Minimal JSON reader/writer for the tuning table, following the same
/// hand-rolled idiom as `bioformer-nn`'s `serialize.rs` (this workspace
/// vendors no JSON crate).
mod json {
    pub(super) fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    pub(super) struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        pub(super) fn new(src: &'a str) -> Self {
            Parser {
                bytes: src.as_bytes(),
                pos: 0,
            }
        }

        fn error(&self, msg: &str) -> String {
            format!("tune table JSON at byte {}: {msg}", self.pos)
        }

        pub(super) fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        pub(super) fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(&format!("expected {:?}", b as char)))
            }
        }

        pub(super) fn try_consume(&mut self, b: u8) -> bool {
            if self.bytes.get(self.pos) == Some(&b) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        pub(super) fn parse_string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err(self.error("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&esc) = self.bytes.get(self.pos) else {
                            return Err(self.error("unterminated escape"));
                        };
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.error("truncated \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.error("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("bad \\u code point"))?,
                                );
                            }
                            _ => return Err(self.error("unknown escape")),
                        }
                    }
                    _ => {
                        // Re-sync to the char boundary for multi-byte UTF-8.
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| self.error("truncated UTF-8"))?;
                        let s =
                            std::str::from_utf8(chunk).map_err(|_| self.error("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }

        pub(super) fn parse_usize(&mut self) -> Result<usize, String> {
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(self.error("expected a number"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("digits are ASCII")
                .parse()
                .map_err(|e| self.error(&format!("bad number: {e}")))
        }

        /// Parses `[ item, item, ... ]`, delegating each item to `item`.
        pub(super) fn parse_array(
            &mut self,
            mut item: impl FnMut(&mut Self) -> Result<(), String>,
        ) -> Result<(), String> {
            self.skip_ws();
            self.expect(b'[')?;
            self.skip_ws();
            if self.try_consume(b']') {
                return Ok(());
            }
            loop {
                item(self)?;
                self.skip_ws();
                if self.try_consume(b',') {
                    self.skip_ws();
                    continue;
                }
                self.expect(b']')?;
                return Ok(());
            }
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic cost model: generic 8×32 wins fp32 at k ≥ 64, the tile
    /// path wins int8 at n < 8, everything else prefers the default.
    fn synthetic_cost(c: &Candidate, s: &GemmShape) -> f64 {
        match c {
            Candidate::Fp32(p)
                if p.spec
                    == (TileSpec {
                        mr: 8,
                        nr: 32,
                        kc: 0,
                    })
                    && s.k >= 64 =>
            {
                0.5
            }
            Candidate::Fp32(p) if *p == GemmPlan::default() => 1.0,
            Candidate::Fp32(_) => 1.5,
            Candidate::Int8(Int8Kernel::Tile) if s.n < 8 => 0.5,
            Candidate::Int8(Int8Kernel::Dispatch) => 1.0,
            Candidate::Int8(_) => 2.0,
        }
    }

    fn shapes() -> Vec<GemmShape> {
        vec![
            GemmShape::fp32(0, 64, 256),
            GemmShape::fp32(31, 32, 31),
            GemmShape::int8(31, 64, 4),
            GemmShape::int8(0, 64, 256),
            GemmShape::fp32(0, 64, 256), // duplicate — tuned once
        ]
    }

    #[test]
    fn tuner_is_deterministic_for_a_deterministic_cost() {
        let t1 = tune_with_cost(&shapes(), &mut synthetic_cost);
        let t2 = tune_with_cost(&shapes(), &mut synthetic_cost);
        assert_eq!(t1, t2);
        assert_eq!(t1.to_json(), t2.to_json());
        // The synthetic model makes generic 8x32 win the k=64 fp32 shape.
        let plan = t1.lookup_fp32(0, 64, 256).expect("winner recorded");
        assert_eq!(
            plan.spec,
            TileSpec {
                mr: 8,
                nr: 32,
                kc: 0
            }
        );
        assert_eq!(plan.kernel, Fp32Kernel::Generic);
        // Wildcard lookup serves exact-m queries too.
        assert!(t1.lookup_fp32(31, 64, 256).is_some());
        // The small fp32 shape kept its default.
        assert!(t1.lookup_fp32(31, 32, 31).is_none());
        // One decision line per distinct shape.
        assert_eq!(t1.log().len(), 4);
    }

    #[test]
    fn json_round_trip_preserves_the_table() {
        let table = tune_with_cost(&shapes(), &mut synthetic_cost);
        let parsed = TuneTable::from_json(&table.to_json()).expect("parse");
        assert_eq!(parsed, table);
        // An empty table round-trips too.
        let empty = TuneTable::new("portable");
        assert_eq!(TuneTable::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(TuneTable::from_json("").is_err());
        assert!(TuneTable::from_json("{\"tier\": 3}").is_err());
        assert!(TuneTable::from_json("{\"fp32\": [{\"kernel\": \"nope\"}]}").is_err());
        assert!(TuneTable::from_json("{\"bogus\": []}").is_err());
    }

    #[test]
    fn wrong_tier_table_is_ignored_by_the_backend() {
        use crate::backend::ComputeBackend;
        let mut table = TuneTable::new("some-other-cpu");
        table.insert_fp32(
            0,
            64,
            256,
            GemmPlan::new(
                TileSpec {
                    mr: 8,
                    nr: 32,
                    kc: 0,
                },
                Fp32Kernel::Generic,
            ),
        );
        let backend = crate::backend::PackedCpuBackend::with_table(table);
        assert!(
            backend.table().is_none(),
            "foreign-tier table must be dropped"
        );
        assert_eq!(backend.plan_fp32(31, 64, 256), GemmPlan::default());
    }

    #[test]
    fn candidate_grids_start_with_the_default() {
        assert_eq!(fp32_candidates()[0], GemmPlan::default());
        assert_eq!(int8_candidates(64, 64)[0], Int8Kernel::Dispatch);
        // Over-cap shapes offer no whole-GEMM alternative.
        assert_eq!(int8_candidates(bioformer_simd::QGEMM_K_CAP + 1, 4).len(), 1);
    }

    #[test]
    fn wall_clock_tune_smoke() {
        // Tiny shapes so the smoke test stays fast; we only assert the
        // table is well-formed, not which kernel wins.
        let shapes = [GemmShape::fp32(4, 8, 8), GemmShape::int8(4, 8, 8)];
        let table = tune(&shapes);
        assert!(table.matches_current_tier() || !tuning_enabled());
        assert!(!table.log().is_empty());
    }
}
