//! A recycling scratch allocator for inference.
//!
//! Every `forward_infer` pass of a transformer allocates the same ladder of
//! intermediate tensors — projections, attention scores, FFN activations —
//! and frees them microseconds later. Under a serving worker that is
//! thousands of identical allocation patterns per second hammering the
//! global allocator.
//!
//! [`TensorArena`] breaks the cycle: it keeps a pool of previously-used
//! `f32` buffers, hands them out via [`TensorArena::tensor`] /
//! [`TensorArena::alloc`], and takes them back via
//! [`TensorArena::recycle`]. After one warm-up pass the pool holds a buffer
//! for every intermediate in the forward graph, so steady-state forwards
//! perform **zero heap allocations** (pinned by an allocation-counting test
//! in the umbrella crate).
//!
//! # Lifecycle
//!
//! The intended discipline mirrors a bump allocator with a per-forward
//! reset, expressed through ownership instead of pointers:
//!
//! 1. a layer allocates its output from the arena,
//! 2. the caller recycles each intermediate as soon as the next layer has
//!    consumed it,
//! 3. the final output is copied out (or handed to the caller) and the
//!    buffer recycled, returning the arena to its checkpoint state.
//!
//! Forgetting to recycle is *safe* — the buffer is simply dropped and the
//! pool re-grows on the next pass — it just costs an allocation.
//!
//! ```
//! use bioformer_tensor::arena::TensorArena;
//!
//! let mut arena = TensorArena::new();
//! let a = arena.tensor(&[4, 8]);       // pool miss: heap allocation
//! arena.recycle(a);
//! let b = arena.tensor(&[8, 4]);       // pool hit: same buffer, no alloc
//! assert_eq!(arena.stats().misses, 1);
//! assert_eq!(arena.stats().hits, 1);
//! # drop(b);
//! ```

use crate::tensor::Tensor;

/// Allocation counters of a [`TensorArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Requests served from the pool without touching the heap.
    pub hits: usize,
    /// Requests that had to allocate (or grow) a buffer on the heap.
    pub misses: usize,
    /// Buffers returned via [`TensorArena::recycle`].
    pub recycled: usize,
}

/// A pool of reusable `f32` buffers backing inference scratch tensors.
///
/// Not thread-safe by design: each serving worker owns one arena (`&mut`
/// threading keeps the borrow checker, not a lock, in charge).
#[derive(Debug, Default)]
pub struct TensorArena {
    free: Vec<Vec<f32>>,
    stats: ArenaStats,
}

impl TensorArena {
    /// An empty arena; buffers are acquired lazily on first use.
    pub fn new() -> Self {
        TensorArena::default()
    }

    /// Takes a buffer of exactly `len` zero-initialised elements, reusing a
    /// pooled buffer when one is large enough (best fit).
    pub fn alloc(&mut self, len: usize) -> Vec<f32> {
        // Best fit: the smallest pooled buffer whose capacity suffices, so
        // a small request does not burn the one big buffer a later large
        // request needs.
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, _)) => {
                self.stats.hits += 1;
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.stats.misses += 1;
                // Recycle the smallest pooled buffer's storage if one
                // exists? No: growing it would reallocate anyway. A fresh
                // buffer keeps the pool's size distribution intact.
                vec![0.0f32; len]
            }
        }
    }

    /// Takes a zeroed tensor of the given shape from the pool.
    pub fn tensor(&mut self, dims: &[usize]) -> Tensor {
        let len: usize = dims.iter().product();
        Tensor::from_vec(self.alloc(len), dims)
    }

    /// Returns a tensor's buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_vec(t.into_vec());
    }

    /// Returns a raw buffer to the pool.
    pub fn recycle_vec(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.stats.recycled += 1;
            self.free.push(buf);
        }
    }

    /// Allocation counters since construction (or the last
    /// [`TensorArena::reset_stats`]).
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Zeroes the counters, e.g. after a warm-up pass, so a later
    /// [`ArenaStats::misses`] reading counts only steady-state behaviour.
    pub fn reset_stats(&mut self) {
        self.stats = ArenaStats::default();
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Drops every pooled buffer (frees the memory).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_after_recycle_is_a_hit() {
        let mut arena = TensorArena::new();
        let t = arena.tensor(&[8]);
        assert_eq!(arena.stats().misses, 1);
        arena.recycle(t);
        let t2 = arena.tensor(&[2, 3]); // smaller: fits the pooled buffer
        assert_eq!(arena.stats().hits, 1);
        assert_eq!(arena.stats().misses, 1);
        assert_eq!(t2.len(), 6);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn alloc_zeroes_previous_contents() {
        let mut arena = TensorArena::new();
        let mut t = arena.tensor(&[4]);
        t.data_mut().fill(7.0);
        arena.recycle(t);
        let t2 = arena.tensor(&[4]);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut arena = TensorArena::new();
        let big = arena.tensor(&[100]);
        let small = arena.tensor(&[10]);
        arena.recycle(big);
        arena.recycle(small);
        // A 10-element request must take the 10-capacity buffer…
        let t = arena.tensor(&[10]);
        assert_eq!(arena.pooled(), 1);
        // …leaving the 100-capacity one for a large request.
        let t2 = arena.tensor(&[64]);
        assert_eq!(arena.stats().hits, 2);
        drop((t, t2));
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut arena = TensorArena::new();
        // Warm-up: the forward "graph" allocates three live tensors at once.
        for _ in 0..2 {
            let a = arena.tensor(&[16, 16]);
            let b = arena.tensor(&[16, 4]);
            let c = arena.tensor(&[4]);
            arena.recycle(a);
            arena.recycle(b);
            arena.recycle(c);
        }
        arena.reset_stats();
        for _ in 0..10 {
            let a = arena.tensor(&[16, 16]);
            let b = arena.tensor(&[16, 4]);
            let c = arena.tensor(&[4]);
            arena.recycle(a);
            arena.recycle(b);
            arena.recycle(c);
        }
        assert_eq!(arena.stats().misses, 0, "steady state must not allocate");
        assert_eq!(arena.stats().hits, 30);
    }

    #[test]
    fn zero_len_tensors_are_fine() {
        let mut arena = TensorArena::new();
        let t = arena.tensor(&[0]);
        assert!(t.is_empty());
        arena.recycle(t); // capacity 0: silently dropped
        assert_eq!(arena.pooled(), 0);
    }
}
