//! The contiguous row-major `f32` tensor type.

use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout the Bioformers
/// stack: network activations, parameters and gradients are all `Tensor`s.
/// The element buffer is always exactly `shape.len()` long.
///
/// # Example
///
/// ```
/// use bioformer_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.data().len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

/// Error returned by [`Tensor::try_from_vec`] when the buffer length does not
/// match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildTensorError {
    /// Number of elements the shape requires.
    pub expected: usize,
    /// Number of elements the caller provided.
    pub actual: usize,
}

impl fmt::Display for BuildTensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer length {} does not match shape element count {}",
            self.actual, self.expected
        )
    }
}

impl std::error::Error for BuildTensorError {}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the element count of `dims`.
    /// Use [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        match Self::try_from_vec(data, dims) {
            Ok(t) => t,
            Err(e) => panic!("Tensor::from_vec: {e}"),
        }
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildTensorError`] if the buffer length does not match the
    /// shape's element count.
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, BuildTensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(BuildTensorError {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f(flat_index)` for every element.
    pub fn from_fn(dims: &[usize], f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the element buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the element buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.flat_index(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.shape.flat_index(index);
        self.data[i] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "reshape from {} to {} changes element count",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no data copy).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "reshape from {} to {} changes element count",
            self.shape,
            shape
        );
        self.shape = shape;
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires a 2-D tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Returns row `r` of a 2-D tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a 2-D tensor");
        let n = self.shape.dim(1);
        &self.data[r * n..(r + 1) * n]
    }

    /// Mutable row view of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a 2-D tensor");
        let n = self.shape.dim(1);
        &mut self.data[r * n..(r + 1) * n]
    }

    /// Element-wise sum; returns a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference; returns a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product; returns a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// In-place element-wise accumulation `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(
            self.shape, rhs.shape,
            "add_assign shape mismatch: {} vs {}",
            self.shape, rhs.shape
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(
            self.shape, rhs.shape,
            "axpy shape mismatch: {} vs {}",
            self.shape, rhs.shape
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        self.map(|v| v * scalar)
    }

    /// Multiplies every element by `scalar` in place.
    pub fn scale_in_place(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, rhs.shape,
            "element-wise op shape mismatch: {} vs {}",
            self.shape, rhs.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute element (0.0 for empty tensors).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Index of the maximum element along the last axis of a 2-D tensor,
    /// one result per row.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a 2-D tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        assert!(n > 0, "argmax_rows requires at least one column");
        (0..m)
            .map(|r| {
                let row = &self.data[r * n..(r + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Returns `true` when every element differs from `rhs` by at most
    /// `atol` (and the shapes match).
    pub fn allclose(&self, rhs: &Tensor, atol: f32) -> bool {
        self.shape == rhs.shape
            && self
                .data
                .iter()
                .zip(rhs.data.iter())
                .all(|(a, b)| (a - b).abs() <= atol)
    }

    /// Returns `true` when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Stacks 2-D tensors with identical shapes along a new leading axis,
    /// producing a `[count, rows, cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the shapes disagree.
    pub fn stack(items: &[&Tensor]) -> Tensor {
        assert!(
            !items.is_empty(),
            "Tensor::stack requires at least one item"
        );
        let first = items[0].shape().clone();
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        let mut data = Vec::with_capacity(first.len() * items.len());
        for t in items {
            assert_eq!(
                *t.shape(),
                first,
                "Tensor::stack shape mismatch: {} vs {}",
                t.shape(),
                first
            );
            data.extend_from_slice(t.data());
        }
        Tensor {
            shape: Shape::from(dims),
            data,
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, …, {:.4}] ({} elems))",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    /// An empty 1-D tensor.
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Tensor::full(&[2], 3.5);
        assert_eq!(f.data(), &[3.5, 3.5]);
    }

    #[test]
    fn eye_matrix() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn try_from_vec_rejects_bad_len() {
        let err = Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(err.expected, 6);
        assert_eq!(err.actual, 5);
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_panics_on_bad_len() {
        Tensor::from_vec(vec![0.0; 3], &[2, 2]);
    }

    #[test]
    fn indexing_and_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_wrong_count() {
        Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert!(tt.transpose2().allclose(&t, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &g);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.0, -5.0], &[4]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -5.0);
        assert_eq!(t.abs_max(), 5.0);
        assert_eq!(t.norm_sq(), 1.0 + 16.0 + 4.0 + 25.0);
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn argmax_rows_ties_pick_last_max() {
        // max_by keeps the last maximal element on ties.
        let t = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        assert_eq!(t.argmax_rows(), vec![1]);
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6], &[2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-8));
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[0], f32::NAN);
        assert!(t.has_non_finite());
    }

    #[test]
    fn stack_tensors() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.data()[0], 1.0);
        assert_eq!(s.data()[4], 0.0);
    }

    #[test]
    fn rows_views() {
        let mut t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
        t.row_mut(0)[0] = 9.0;
        assert_eq!(t.at(&[0, 0]), 9.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[16]);
        let s = format!("{t:?}");
        assert!(s.contains("shape"));
    }
}
