//! Minimal, dependency-light `f32` tensor library underpinning the Bioformers
//! reproduction.
//!
//! The crate provides exactly what a tiny-transformer training/inference stack
//! needs and nothing more:
//!
//! * [`Tensor`] — a contiguous, row-major `f32` tensor with shape metadata,
//!   element-wise arithmetic and reshaping ([`tensor`]).
//! * Panel-packed, register-tiled, cache-blocked and (for large problems)
//!   multi-threaded matrix multiplication ([`matmul`], [`pack`]), with
//!   fused bias/activation epilogues for the inference hot path.
//! * A recycling scratch allocator ([`arena::TensorArena`]) so repeated
//!   inference forwards reuse buffers instead of hitting the global
//!   allocator.
//! * 1-D convolution forward and backward primitives ([`conv`]).
//! * Neural-network math primitives — softmax, log-softmax, GELU, LayerNorm —
//!   with their analytic derivatives ([`ops`]), including in-place variants
//!   for allocation-free inference.
//!
//! # Design notes
//!
//! Shape mismatches are *programming errors* in this stack, so the hot-path
//! methods panic with descriptive messages rather than returning `Result`
//! (documented per method under **Panics**). Constructors that take
//! user-supplied buffers offer fallible `try_*` variants.
//!
//! # Example
//!
//! ```
//! use bioformer_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod backend;
pub mod conv;
pub mod matmul;
pub mod ops;
pub mod pack;
pub mod parallel;
pub mod qgemm;
pub mod shape;
pub mod tensor;
pub mod tune;

pub use arena::TensorArena;
pub use backend::{default_backend, ComputeBackend, GemmPlan, PackedCpuBackend, TileSpec};
pub use shape::Shape;
pub use tensor::Tensor;
pub use tune::{GemmShape, TuneTable};

/// Absolute tolerance used by [`Tensor::allclose`] and the test-suites of the
/// downstream crates when comparing floating-point results.
pub const DEFAULT_ATOL: f32 = 1e-5;
