//! Dense matrix multiplication kernels.
//!
//! Three layouts cover every product a manual-backprop transformer needs:
//!
//! | Function       | Computes            | Typical use                      |
//! |----------------|---------------------|----------------------------------|
//! | [`matmul`]     | `A[m,k] · B[k,n]`   | attention `A·V`, backward        |
//! | [`matmul_nt`]  | `A[m,k] · Bᵀ[n,k]`  | `x · Wᵀ` forward (PyTorch layout)|
//! | [`matmul_tn`]  | `Aᵀ[m,k] · B[m,n]`  | weight gradients `dyᵀ · x`       |
//! | [`matvec`]     | `A[m,k] · v[k]`     | single-row products              |
//!
//! [`matmul`], [`matmul_nt`] and [`matvec`] route through the panel-packed,
//! register-tiled kernels in [`crate::pack`]: the right-hand side is packed
//! into L1-friendly [`crate::pack::NR`]-wide column panels once per call
//! (or once per *layer*, when the caller caches a
//! [`crate::pack::PackedB`]), and an `MR×NR` microkernel with unrolled FMA
//! accumulators produces each output tile.
//!
//! [`matmul_tn`] is backward-only (weight gradients) and keeps the original
//! `i-k-j` kernel, including its skip-zero branch — gradients flowing
//! through ReLU/dropout are sparse enough that skipping zero multipliers
//! wins there, while on the inference path the branch only cost
//! mispredictions. The original kernels remain available as
//! [`matmul_naive`] / [`matmul_nt_naive`] — they are the reference oracles
//! for the packed kernels' property tests and the baseline for the
//! `inference` benchmark's speedup claim.
//!
//! All kernels split output rows across scoped threads when the problem is
//! large enough (see [`plan_threads`]); the per-element accumulation order
//! never depends on the thread count.

use crate::pack::{self, Epilogue};
use crate::tensor::Tensor;

/// `C = A · B` for 2-D tensors `A[m,k]`, `B[k,n]`, via the packed kernel.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul: inner dimensions disagree ({} vs {})",
        a.shape(),
        b.shape()
    );
    let mut packed = vec![0.0f32; pack::packed_len(k, n)];
    pack::pack_b(b.data(), k, n, &mut packed);
    let mut out = vec![0.0f32; m * n];
    pack::gemm_packed(a.data(), m, k, &packed, n, &mut out, Epilogue::None);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` for `A[m,k]`, `B[n,k]` — the natural layout for a linear
/// layer whose weight matrix is stored `[out_features, in_features]` — via
/// the packed kernel.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the `k` dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_nt: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_nt: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul_nt: inner dimensions disagree ({} vs {})",
        a.shape(),
        b.shape()
    );
    let mut packed = vec![0.0f32; pack::packed_len(k, n)];
    pack::pack_b_t(b.data(), n, k, &mut packed);
    let mut out = vec![0.0f32; m * n];
    pack::gemm_packed(a.data(), m, k, &packed, n, &mut out, Epilogue::None);
    Tensor::from_vec(out, &[m, n])
}

/// Reference `i-k-j` kernel for [`matmul`] (the pre-packing implementation).
///
/// Kept as the oracle for the packed kernels' parity/property tests and as
/// the baseline of the `inference` benchmark's GEMM speedup comparison; not
/// used on any hot path.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the inner dimensions disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_naive: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_naive: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_naive: inner dimensions disagree");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        // Latent-bug guard: `chunks_mut(0)` panics for empty outputs.
        return Tensor::from_vec(out, &[m, n]);
    }
    let (ad, bd) = (a.data(), b.data());
    parallel_over_rows(&mut out, m, n, gemm_work(m, n, k), |row0, rows| {
        for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let a_row = &ad[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bv;
                }
            }
        }
    });
    Tensor::from_vec(out, &[m, n])
}

/// Reference dot-product kernel for [`matmul_nt`] (the pre-packing
/// implementation); see [`matmul_naive`] for why it is kept.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the `k` dimensions disagree.
pub fn matmul_nt_naive(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_nt_naive: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_nt_naive: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt_naive: inner dimensions disagree");
    let mut out = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        // Latent-bug guard: `chunks_mut(0)` panics for empty outputs.
        return Tensor::from_vec(out, &[m, n]);
    }
    let (ad, bd) = (a.data(), b.data());
    parallel_over_rows(&mut out, m, n, gemm_work(m, n, k), |row0, rows| {
        for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let a_row = &ad[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot_unrolled(a_row, &bd[j * k..(j + 1) * k]);
            }
        }
    });
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` for `A[m,k]`, `B[m,n]`, producing `C[k,n]` — the weight
/// gradient `dW = dyᵀ · x` of a linear layer.
///
/// Backward-only, so it keeps the `i-k-j` kernel with the skip-zero branch:
/// gradients arriving through ReLU/dropout masks carry exact zeros that are
/// worth skipping, a property inference activations do not have.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the `m` dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_tn: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_tn: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (m2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        m,
        m2,
        "matmul_tn: outer dimensions disagree ({} vs {})",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; k * n];
    if k == 0 || n == 0 {
        // Latent-bug guard: `chunks_mut(0)` panics for empty outputs.
        return Tensor::from_vec(out, &[k, n]);
    }
    let (ad, bd) = (a.data(), b.data());
    parallel_over_rows(&mut out, k, n, gemm_work(m, n, k), |row0, rows| {
        for (local_kk, out_row) in rows.chunks_mut(n).enumerate() {
            let kk = row0 + local_kk;
            for mm in 0..m {
                let a_val = ad[mm * k + kk];
                if a_val == 0.0 {
                    continue;
                }
                let b_row = &bd[mm * n..(mm + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_val * bv;
                }
            }
        }
    });
    Tensor::from_vec(out, &[k, n])
}

/// Unrolled dot product with four partial sums, breaking the sequential FP
/// dependence chain so the loop vectorises. Shared by [`matvec`], the
/// [`matmul_nt_naive`] reference and the packed kernels' remainder paths.
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut it_a = a.chunks_exact(4);
    let mut it_b = b.chunks_exact(4);
    for (ca, cb) in (&mut it_a).zip(&mut it_b) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in it_a.remainder().iter().zip(it_b.remainder().iter()) {
        tail += x * y;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Matrix–vector product `A[m,k] · v[k]`, returning a length-`m` 1-D tensor.
///
/// Each row is an unrolled four-accumulator dot product ([`dot_unrolled`] —
/// the same primitive the GEMM kernels build on), and rows are split across
/// threads by the shared [`plan_threads`] planner. The previous
/// implementation was serial with a single sequential FP dependence chain
/// per row.
///
/// # Panics
///
/// Panics if `a` is not 2-D, `v` is not 1-D, or the lengths disagree.
pub fn matvec(a: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matvec: lhs must be 2-D");
    assert_eq!(v.shape().rank(), 1, "matvec: rhs must be 1-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, v.dims()[0], "matvec: dimension mismatch");
    let mut out = vec![0.0f32; m];
    let (ad, vd) = (a.data(), v.data());
    parallel_over_rows(&mut out, m, 1, gemm_work(m, 1, k), |row0, rows| {
        for (local_i, o) in rows.iter_mut().enumerate() {
            let i = row0 + local_i;
            *o = dot_unrolled(&ad[i * k..(i + 1) * k], vd);
        }
    });
    Tensor::from_vec(out, &[m])
}

/// Work estimate of an `m×k · k×n` GEMM in **FLOPs** (each of the `m·n·k`
/// multiply–accumulate pairs counts as 2 floating-point operations).
///
/// Every kernel in this module and in [`crate::pack`] passes exactly this
/// value to [`plan_threads`], so the planner's thresholds are calibrated
/// against one unit. (Before this helper existed, call sites hand-rolled
/// `2 * m * n * k`, which invited double-counting bugs when a new kernel
/// guessed differently.)
pub const fn gemm_work(m: usize, n: usize, k: usize) -> usize {
    2 * m * n * k
}

/// Number of worker threads worth using for a kernel of the given `work`
/// estimate, measured in **FLOPs** (see [`gemm_work`]).
///
/// * below [`crate::parallel::PARALLEL_WORK_THRESHOLD`] (2²⁶ FLOPs) — or on
///   a single-core machine — the answer is 1 (run on the caller's thread);
/// * above it, one thread per 2²⁴ FLOPs (16 MFLOP, ≈8 M multiply–adds), so
///   every spawned thread amortises its ~0.25 ms start-up cost, clamped to
///   `[2, max_threads]`.
///
/// Note the asymmetry: crossing the threshold jumps straight to
/// `2²⁶ ⁻ ²⁴ = 4` threads (not 2) because the threshold is deliberately set
/// where fan-out is already clearly profitable.
pub fn plan_threads(work: usize) -> usize {
    let max = crate::parallel::max_threads();
    if max <= 1 || work < crate::parallel::PARALLEL_WORK_THRESHOLD {
        1
    } else {
        (work >> 24).clamp(2, max)
    }
}

/// Splits a flat `rows*cols` buffer into one `(row_index, row_slice)` chunk
/// per worker; helper for the threaded kernels.
fn split_rows(
    buf: &mut [f32],
    rows: usize,
    cols: usize,
    threads: usize,
) -> Vec<(usize, &mut [f32])> {
    let per = rows.div_ceil(threads.min(rows.max(1)).max(1));
    let mut out = Vec::new();
    let mut rest = buf;
    let mut row = 0usize;
    while row < rows {
        let take = per.min(rows - row);
        let (head, tail) = rest.split_at_mut(take * cols);
        out.push((row, head));
        rest = tail;
        row += take;
    }
    out
}

/// Runs `body(first_row, rows_slice)` over row groups of `out`, in parallel
/// when the estimated `work` (FLOPs, see [`gemm_work`]) is large enough.
/// Shared by the naive kernels here and the packed kernels in
/// [`crate::pack`], so every GEMM obeys the same [`plan_threads`] policy.
pub(crate) fn parallel_over_rows<F>(out: &mut [f32], rows: usize, cols: usize, work: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let threads = plan_threads(work);
    if threads <= 1 {
        body(0, out);
        return;
    }
    let chunks = split_rows(out, rows, cols, threads);
    std::thread::scope(|scope| {
        let body = &body;
        for (row0, slice) in chunks {
            scope.spawn(move || body(row0, slice));
        }
    });
}

// Re-export a convenience method surface on Tensor.
impl Tensor {
    /// `self · rhs`; see [`matmul`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        matmul(self, rhs)
    }

    /// `self · rhsᵀ`; see [`matmul_nt`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        matmul_nt(self, rhs)
    }

    /// `selfᵀ · rhs`; see [`matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the outer dimensions disagree.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        matmul_tn(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a GEMM large enough to cross the parallel threshold must
    /// not panic when only one worker thread is available (single-core
    /// machines, or benchmarks forcing a serial baseline). `plan_threads`
    /// used to call `clamp(2, 1)` here.
    #[test]
    fn above_threshold_gemm_works_single_threaded() {
        let _guard = crate::parallel::override_guard(1);
        let n = 330; // 2·n³ > PARALLEL_WORK_THRESHOLD
        let a = Tensor::from_fn(&[n, n], |i| (i % 7) as f32 - 3.0);
        let c = matmul(&a, &Tensor::eye(n));
        assert!(c.allclose(&a, 0.0));
    }

    /// Pins `plan_threads` at the threshold boundaries so the planner's
    /// units (FLOPs via [`gemm_work`]) cannot silently drift: callers and
    /// planner must keep agreeing on what "work" means.
    #[test]
    fn plan_threads_boundaries() {
        use crate::parallel::PARALLEL_WORK_THRESHOLD as T;
        let _guard = crate::parallel::override_guard(16);
        // Below the threshold: always serial.
        assert_eq!(plan_threads(0), 1);
        assert_eq!(plan_threads(T - 1), 1);
        // At the threshold: 2^26 FLOPs / 2^24 per thread = 4 threads.
        assert_eq!(plan_threads(T), 4);
        // One thread per 16 MFLOP past it…
        assert_eq!(plan_threads(1 << 28), 16);
        // …clamped to the machine/override cap.
        assert_eq!(plan_threads(1 << 29), 16);
        assert_eq!(plan_threads(usize::MAX), 16);
        drop(_guard);
        // Single-core machines never fan out, whatever the work.
        let _guard = crate::parallel::override_guard(1);
        assert_eq!(plan_threads(usize::MAX), 1);
    }

    /// The planner units are pinned to [`gemm_work`]: a bio1-block-sized
    /// GEMM stays serial, a clearly-huge one fans out.
    #[test]
    fn gemm_work_units_drive_the_planner() {
        let _guard = crate::parallel::override_guard(16);
        assert_eq!(gemm_work(32, 256, 64), 2 * 32 * 256 * 64);
        assert_eq!(plan_threads(gemm_work(32, 256, 64)), 1); // 1 MFLOP: serial
        assert_eq!(plan_threads(gemm_work(512, 512, 512)), 16); // 268 MFLOP
    }

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Tensor::from_fn(dims, |_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((v >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = filled(&[7, 5], 1);
        let b = filled(&[5, 9], 2);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = filled(&[4, 4], 3);
        assert!(matmul(&a, &Tensor::eye(4)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_nt_matches_naive() {
        let a = filled(&[6, 8], 4);
        let b = filled(&[5, 8], 5);
        let expect = naive(&a, &b.transpose2());
        assert!(matmul_nt(&a, &b).allclose(&expect, 1e-4));
    }

    #[test]
    fn matmul_tn_matches_naive() {
        let a = filled(&[6, 3], 6);
        let b = filled(&[6, 4], 7);
        let expect = naive(&a.transpose2(), &b);
        assert!(matmul_tn(&a, &b).allclose(&expect, 1e-4));
    }

    #[test]
    fn reference_kernels_match_packed_kernels() {
        let a = filled(&[13, 37], 12);
        let b = filled(&[37, 21], 13);
        assert!(matmul_naive(&a, &b).allclose(&matmul(&a, &b), 1e-4));
        let bt = filled(&[21, 37], 14);
        assert!(matmul_nt_naive(&a, &bt).allclose(&matmul_nt(&a, &bt), 1e-4));
    }

    /// The satellite fix for `matvec`: it must agree with `matmul` against
    /// a column vector over shapes exercising the unrolled remainder (k not
    /// a multiple of 4) and the single-row edge.
    #[test]
    fn matvec_matches_matmul() {
        for &(m, k) in &[(5, 7), (1, 1), (8, 4), (3, 13), (17, 64)] {
            let a = filled(&[m, k], 8 + m as u64);
            let v = filled(&[k], 9 + k as u64);
            let mv = matvec(&a, &v);
            let mm = matmul(&a, &v.reshape(&[k, 1]));
            for i in 0..m {
                assert!(
                    (mv.data()[i] - mm.data()[i]).abs() < 1e-5,
                    "({m},{k}) row {i}"
                );
            }
        }
    }

    #[test]
    fn large_parallel_matches_naive() {
        // Big enough to trigger the threaded path.
        let a = filled(&[64, 96], 10);
        let b = filled(&[96, 80], 11);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn one_by_one() {
        let a = Tensor::from_vec(vec![3.0], &[1, 1]);
        let b = Tensor::from_vec(vec![4.0], &[1, 1]);
        assert_eq!(matmul(&a, &b).data(), &[12.0]);
    }

    /// Regression: every kernel must return an empty tensor — not panic in
    /// `chunks_mut(0)` — when an output dimension is zero (e.g. the weight
    /// gradient of a zero-output-feature layer).
    #[test]
    fn zero_dim_outputs_do_not_panic() {
        let z = |dims: &[usize]| Tensor::zeros(dims);
        assert_eq!(matmul(&z(&[3, 2]), &z(&[2, 0])).dims(), &[3, 0]);
        assert_eq!(matmul_naive(&z(&[3, 2]), &z(&[2, 0])).dims(), &[3, 0]);
        assert_eq!(matmul_nt(&z(&[3, 2]), &z(&[0, 2])).dims(), &[3, 0]);
        assert_eq!(matmul_nt_naive(&z(&[3, 2]), &z(&[0, 2])).dims(), &[3, 0]);
        // dW = dyᵀ·x with 0 output features: [3,0]ᵀ · [3,4] = [0,4]…
        assert_eq!(matmul_tn(&z(&[3, 0]), &z(&[3, 4])).dims(), &[0, 4]);
        // …and with a 0-column rhs.
        assert_eq!(matmul_tn(&z(&[3, 2]), &z(&[3, 0])).dims(), &[2, 0]);
        assert_eq!(matvec(&z(&[0, 4]), &z(&[4])).dims(), &[0]);
    }

    #[test]
    fn dot_unrolled_matches_sum() {
        let a = filled(&[23], 20);
        let b = filled(&[23], 21);
        let want: f32 = a
            .data()
            .iter()
            .zip(b.data().iter())
            .map(|(x, y)| x * y)
            .sum();
        assert!((dot_unrolled(a.data(), b.data()) - want).abs() < 1e-5);
        assert_eq!(dot_unrolled(&[], &[]), 0.0);
    }
}
