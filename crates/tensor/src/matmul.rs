//! Dense matrix multiplication kernels.
//!
//! Three layouts cover every product a manual-backprop transformer needs:
//!
//! | Function       | Computes            | Typical use                      |
//! |----------------|---------------------|----------------------------------|
//! | [`matmul`]     | `A[m,k] · B[k,n]`   | activations × weights (backward) |
//! | [`matmul_nt`]  | `A[m,k] · Bᵀ[n,k]`  | `x · Wᵀ` forward (PyTorch layout)|
//! | [`matmul_tn`]  | `Aᵀ[m,k] · B[m,n]`  | weight gradients `dyᵀ · x`       |
//!
//! All kernels use an `i-k-j` loop order over contiguous rows (friendly to
//! auto-vectorisation) and split the output rows across scoped threads when
//! the problem is large enough (see [`crate::parallel`]).

use crate::tensor::Tensor;

/// `C = A · B` for 2-D tensors `A[m,k]`, `B[k,n]`.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul: inner dimensions disagree ({} vs {})",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel_chunks_rows(&mut out, m, n, 2 * m * n * k, |row0, rows| {
        for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let a_row = &ad[i * k..(i + 1) * k];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bv;
                }
            }
        }
    });
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` for `A[m,k]`, `B[n,k]` — the natural layout for a linear
/// layer whose weight matrix is stored `[out_features, in_features]`.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the `k` dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_nt: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_nt: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul_nt: inner dimensions disagree ({} vs {})",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel_chunks_rows(&mut out, m, n, 2 * m * n * k, |row0, rows| {
        for (local_i, out_row) in rows.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let a_row = &ad[i * k..(i + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &bd[j * k..(j + 1) * k];
                // Four partial sums break the sequential FP dependence so
                // the loop vectorises.
                let mut acc = [0.0f32; 4];
                let mut it_a = a_row.chunks_exact(4);
                let mut it_b = b_row.chunks_exact(4);
                for (ca, cb) in (&mut it_a).zip(&mut it_b) {
                    acc[0] += ca[0] * cb[0];
                    acc[1] += ca[1] * cb[1];
                    acc[2] += ca[2] * cb[2];
                    acc[3] += ca[3] * cb[3];
                }
                let mut tail = 0.0f32;
                for (x, y) in it_a.remainder().iter().zip(it_b.remainder().iter()) {
                    tail += x * y;
                }
                *o = acc[0] + acc[1] + acc[2] + acc[3] + tail;
            }
        }
    });
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` for `A[m,k]`, `B[m,n]`, producing `C[k,n]` — the weight
/// gradient `dW = dyᵀ · x` of a linear layer.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the `m` dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_tn: lhs must be 2-D");
    assert_eq!(b.shape().rank(), 2, "matmul_tn: rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (m2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        m,
        m2,
        "matmul_tn: outer dimensions disagree ({} vs {})",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; k * n];
    let (ad, bd) = (a.data(), b.data());
    parallel_chunks_rows(&mut out, k, n, 2 * m * n * k, |row0, rows| {
        for (local_kk, out_row) in rows.chunks_mut(n).enumerate() {
            let kk = row0 + local_kk;
            for mm in 0..m {
                let a_val = ad[mm * k + kk];
                if a_val == 0.0 {
                    continue;
                }
                let b_row = &bd[mm * n..(mm + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_val * bv;
                }
            }
        }
    });
    Tensor::from_vec(out, &[k, n])
}

/// Matrix–vector product `A[m,k] · v[k]`, returning a length-`m` 1-D tensor.
///
/// # Panics
///
/// Panics if `a` is not 2-D, `v` is not 1-D, or the lengths disagree.
pub fn matvec(a: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matvec: lhs must be 2-D");
    assert_eq!(v.shape().rank(), 1, "matvec: rhs must be 1-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(k, v.dims()[0], "matvec: dimension mismatch");
    let out: Vec<f32> = (0..m)
        .map(|i| {
            let row = &a.data()[i * k..(i + 1) * k];
            row.iter().zip(v.data().iter()).map(|(x, y)| x * y).sum()
        })
        .collect();
    Tensor::from_vec(out, &[m])
}

/// Number of worker threads worth using for a kernel of the given work
/// estimate: 1 below the threshold, then roughly one thread per 16 M work
/// units so every spawned thread amortises its ~0.25 ms start-up cost.
fn plan_threads(work: usize) -> usize {
    let max = crate::parallel::max_threads();
    if max <= 1 || work < crate::parallel::PARALLEL_WORK_THRESHOLD {
        1
    } else {
        (work >> 24).clamp(2, max)
    }
}

/// Splits a flat `rows*cols` buffer into one `(row_index, row_slice)` chunk
/// per worker; helper for the threaded kernels.
fn split_rows(
    buf: &mut [f32],
    rows: usize,
    cols: usize,
    threads: usize,
) -> Vec<(usize, &mut [f32])> {
    let per = rows.div_ceil(threads.min(rows.max(1)).max(1));
    let mut out = Vec::new();
    let mut rest = buf;
    let mut row = 0usize;
    while row < rows {
        let take = per.min(rows - row);
        let (head, tail) = rest.split_at_mut(take * cols);
        out.push((row, head));
        rest = tail;
        row += take;
    }
    out
}

/// Runs `body(first_row, rows_slice)` over row groups, in parallel when the
/// estimated `work` is large enough.
fn parallel_chunks_rows<F>(out: &mut [f32], rows: usize, cols: usize, work: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let threads = plan_threads(work);
    if threads <= 1 {
        body(0, out);
        return;
    }
    let chunks = split_rows(out, rows, cols, threads);
    std::thread::scope(|scope| {
        let body = &body;
        for (row0, slice) in chunks {
            scope.spawn(move || body(row0, slice));
        }
    });
}

// Re-export a convenience method surface on Tensor.
impl Tensor {
    /// `self · rhs`; see [`matmul`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        matmul(self, rhs)
    }

    /// `self · rhsᵀ`; see [`matmul_nt`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        matmul_nt(self, rhs)
    }

    /// `selfᵀ · rhs`; see [`matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the outer dimensions disagree.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        matmul_tn(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: a GEMM large enough to cross the parallel threshold must
    /// not panic when only one worker thread is available (single-core
    /// machines, or benchmarks forcing a serial baseline). `plan_threads`
    /// used to call `clamp(2, 1)` here.
    #[test]
    fn above_threshold_gemm_works_single_threaded() {
        let _guard = crate::parallel::override_guard(1);
        let n = 330; // 2·n³ > PARALLEL_WORK_THRESHOLD
        let a = Tensor::from_fn(&[n, n], |i| (i % 7) as f32 - 3.0);
        let c = matmul(&a, &Tensor::eye(n));
        assert!(c.allclose(&a, 0.0));
    }

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn filled(dims: &[usize], seed: u64) -> Tensor {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Tensor::from_fn(dims, |_| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let v = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((v >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = filled(&[7, 5], 1);
        let b = filled(&[5, 9], 2);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = filled(&[4, 4], 3);
        assert!(matmul(&a, &Tensor::eye(4)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_nt_matches_naive() {
        let a = filled(&[6, 8], 4);
        let b = filled(&[5, 8], 5);
        let expect = naive(&a, &b.transpose2());
        assert!(matmul_nt(&a, &b).allclose(&expect, 1e-4));
    }

    #[test]
    fn matmul_tn_matches_naive() {
        let a = filled(&[6, 3], 6);
        let b = filled(&[6, 4], 7);
        let expect = naive(&a.transpose2(), &b);
        assert!(matmul_tn(&a, &b).allclose(&expect, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = filled(&[5, 7], 8);
        let v = filled(&[7], 9);
        let mv = matvec(&a, &v);
        let mm = matmul(&a, &v.reshape(&[7, 1]));
        for i in 0..5 {
            assert!((mv.data()[i] - mm.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn large_parallel_matches_naive() {
        // Big enough to trigger the threaded path.
        let a = filled(&[64, 96], 10);
        let b = filled(&[96, 80], 11);
        assert!(matmul(&a, &b).allclose(&naive(&a, &b), 1e-3));
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn one_by_one() {
        let a = Tensor::from_vec(vec![3.0], &[1, 1]);
        let b = Tensor::from_vec(vec![4.0], &[1, 1]);
        assert_eq!(matmul(&a, &b).data(), &[12.0]);
    }
}
