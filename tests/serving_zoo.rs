//! Model-zoo invariants pinned by property tests, plus the DB6
//! adapted-vs-frozen calibration accuracy check.
//!
//! The two properties the zoo's shadow/A-B router must never lose:
//!
//! 1. **Shadow routing is invisible to the incumbent.** A stream served
//!    through a [`ShadowEngine`] duplicating traffic toward any candidate
//!    emits a `GestureEvent` timeline (and per-window predictions and
//!    confidences) **bit-identical** to the same stream served by the bare
//!    incumbent — for arbitrary signals, chunkings, and candidates.
//! 2. **Agreement counters stay consistent under arbitrary traffic
//!    splits.** Whatever `Split(f)` fraction or shadow duplication runs,
//!    the experiment counters obey their rollup invariants (agreed ≤
//!    compared ≤ candidate windows, resolved + dropped ≤ candidate
//!    requests, arms sum to the request total).

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::trainer::evaluate;
use bioformers::semg::{
    CalibrationConfig, DatasetSpec, NinaproDb6, Normalizer, SessionCalibrator, CHANNELS, WINDOW,
};
use bioformers::serve::{
    DecisionPolicy, Engine, GestureClassifier, InferenceEngine, ModelZoo, PromotionPolicy,
    RouteMode, ShadowEngine, StreamConfig, StreamSession, StreamSummary,
};
use bioformers::tensor::Tensor;
use proptest::prelude::*;
use std::sync::Arc;

const MOCK_CHANNELS: usize = 2;
const MOCK_WINDOW: usize = 8;
/// Interleaved samples per extracted window (slide == window).
const CHUNK: usize = MOCK_CHANNELS * MOCK_WINDOW;

/// A fast deterministic classifier parameterized by `scale`, so two
/// instances with different scales disagree on real windows while staying
/// bit-reproducible run to run.
struct MockBackend {
    scale: f32,
}

impl GestureClassifier for MockBackend {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        let len = MOCK_CHANNELS * MOCK_WINDOW;
        Tensor::from_fn(&[n, 4], |i| {
            let (row, class) = (i / 4, i % 4);
            let x = &windows.data()[row * len..(row + 1) * len];
            let mut score = 0.0f32;
            for (j, &v) in x.iter().enumerate() {
                score += v * self.scale * (((j * (class + 2)) % 11) as f32 / 11.0 - 0.5);
            }
            score
        })
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "mock"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((MOCK_CHANNELS, MOCK_WINDOW))
    }
}

fn mock_engine(scale: f32) -> Arc<dyn Engine> {
    Arc::new(InferenceEngine::new(Box::new(MockBackend { scale })))
}

/// Deterministic pseudo-random interleaved stream of `windows` windows.
fn signal(windows: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..windows * CHUNK)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn stream_cfg() -> StreamConfig {
    StreamConfig::new(MOCK_CHANNELS, MOCK_WINDOW)
        .with_lookahead(0)
        .with_policy(DecisionPolicy {
            vote_depth: 3,
            min_hold: 1,
            confidence_floor: 0.0,
        })
}

/// Streams `stream` through one session over `engine` in `chunk`-sample
/// pushes, merging incremental and finish-time events into one timeline.
fn run_stream(engine: Arc<dyn Engine>, stream: &[f32], chunk: usize) -> StreamSummary {
    let mut session = StreamSession::new(engine, stream_cfg()).expect("stream config");
    let mut events = Vec::new();
    for part in stream.chunks(chunk.max(1)) {
        events.extend(session.push_samples(part).expect("stream push"));
    }
    let mut summary = session.finish().expect("stream finish");
    events.extend(std::mem::take(&mut summary.events));
    summary.events = events;
    summary
}

/// One deterministic window batch for direct engine submission.
fn window_batch(n: usize, seed: u64) -> Tensor {
    let raw = signal(n, seed);
    Tensor::from_vec(raw, &[n, MOCK_CHANNELS, MOCK_WINDOW])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: the incumbent's emitted timeline is bit-identical with
    /// shadowing on and off — shadow routing measures, never perturbs.
    #[test]
    fn shadow_routing_never_changes_incumbent_timeline(
        windows in 1usize..40,
        seed in 1u64..500,
        chunk in prop::sample::select(vec![1usize, 7, CHUNK, 3 * CHUNK + 5, usize::MAX / 2]),
        candidate_scale in prop::sample::select(vec![-3.0f32, 0.25, 1.0, 8.0]),
    ) {
        let stream = signal(windows, seed);

        // Off: the bare incumbent.
        let bare = run_stream(mock_engine(1.0), &stream, chunk);

        // On: the same incumbent weights behind a shadow duplicating every
        // request toward a (possibly disagreeing) candidate.
        let shadow = Arc::new(ShadowEngine::new(
            mock_engine(1.0),
            mock_engine(candidate_scale),
            RouteMode::Shadow,
            &PromotionPolicy::default(),
        ));
        let shadowed = run_stream(shadow.clone(), &stream, chunk);

        prop_assert_eq!(&shadowed.predictions, &bare.predictions);
        prop_assert_eq!(&shadowed.confidences, &bare.confidences);
        prop_assert_eq!(&shadowed.events, &bare.events);
        prop_assert_eq!(shadowed.windows, bare.windows);
    }

    /// Property 2: experiment counters stay rollup-consistent for any
    /// traffic split, and a `Split(f)` divides requests between the arms
    /// exactly (off-by-at-most-one from the ideal fraction).
    #[test]
    fn agreement_counters_consistent_under_arbitrary_splits(
        requests in 1usize..60,
        batch in 1usize..5,
        frac_step in 0u32..101,
        seed in 1u64..500,
        shadow_mode in prop::sample::select(vec![true, false]),
        arms_agree in prop::sample::select(vec![true, false]),
    ) {
        let fraction = frac_step as f32 / 100.0;
        let mode = if shadow_mode {
            RouteMode::Shadow
        } else {
            RouteMode::Split(fraction)
        };
        let candidate_scale = if arms_agree { 1.0 } else { -2.0 };

        let mut zoo = ModelZoo::new();
        zoo.register("inc", mock_engine(1.0)).unwrap();
        zoo.register("cand", mock_engine(candidate_scale)).unwrap();
        zoo.start_experiment("inc", "cand", mode, PromotionPolicy::default())
            .unwrap();

        let routed = zoo.resolve(Some("inc")).unwrap();
        for r in 0..requests {
            let out = routed
                .classify(window_batch(batch, seed + r as u64))
                .expect("classify through the experiment route");
            prop_assert_eq!(out.predictions.len(), batch);
        }

        let exp = zoo.experiment_stats().expect("experiment running");
        prop_assert!(exp.rollup_consistent(), "rollup violated: {exp:?}");

        let total = requests as u64;
        let total_windows = (requests * batch) as u64;
        match mode {
            RouteMode::Shadow => {
                // Every request rides the incumbent and is duplicated.
                prop_assert_eq!(exp.incumbent_requests, total);
                prop_assert_eq!(exp.candidate_requests, total);
                // The inline engines never refuse a duplicate, so after
                // the stats sync every comparison has resolved.
                prop_assert_eq!(exp.dropped, 0);
                prop_assert_eq!(exp.resolved, total);
                prop_assert_eq!(exp.compared_windows, total_windows);
                if arms_agree {
                    prop_assert_eq!(exp.agreed_windows, exp.compared_windows);
                    prop_assert!((exp.agreement_rate() - 1.0).abs() < 1e-12);
                    prop_assert!(exp.mean_confidence_delta().abs() < 1e-6);
                } else {
                    prop_assert!(exp.agreed_windows <= exp.compared_windows);
                }
            }
            RouteMode::Split(f) => {
                prop_assert_eq!(exp.incumbent_requests + exp.candidate_requests, total);
                // Deterministic floor-arithmetic split: the candidate arm
                // count is within one request of the ideal fraction.
                let ideal = f as f64 * requests as f64;
                let got = exp.candidate_requests as f64;
                prop_assert!(
                    (got - ideal).abs() <= 1.0,
                    "split {f}: candidate got {got} of {requests} (ideal {ideal})"
                );
                // Split never compares outputs — agreement counters idle.
                prop_assert_eq!(exp.compared_windows, 0);
                prop_assert_eq!(exp.agreed_windows, 0);
            }
        }
    }
}

/// A Bioformer small enough to train in seconds but structurally complete.
fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

/// The CI-named calibration check (satellite of the zoo PR): per-session
/// affine calibration on DB6 test sessions must actually change accuracy
/// versus the frozen training-split normalizer — the adapted transform is
/// live, not a no-op — and must not collapse the classifier.
#[test]
fn calibration_adapted_vs_frozen_db6_accuracy() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let subject = 0;
    let mut model = small_bioformer(1);
    let outcome = run_standard(&mut model, &db, subject, &ProtocolConfig::quick());
    assert!(outcome.overall > 0.125, "model must beat 8-class chance");

    let frozen = Normalizer::fit(&db.train_dataset(subject));
    let cw = CHANNELS * WINDOW;

    let mut frozen_acc_sum = 0.0;
    let mut adapted_acc_sum = 0.0;
    let mut sessions = 0.0;
    let mut any_window_differs = false;
    for s in db.spec().test_sessions() {
        // Windows of one recording in temporal order — the order a live
        // session would stream them in.
        let ds = db.subject_session_dataset(subject, s);
        let n = ds.len();

        // Frozen: the training-split normalizer, unchanged.
        let frozen_ds = frozen.apply(&ds);
        let (_, facc) = evaluate(&model, frozen_ds.x(), frozen_ds.labels(), 128);

        // Adapted: a per-session calibrator warm-starts from the frozen
        // stats, observes the session's opening windows, then freezes a
        // blended per-channel affine transform.
        let mut cal = SessionCalibrator::new(
            CHANNELS,
            Some(frozen.clone()),
            CalibrationConfig {
                blend: 1.0,
                ..CalibrationConfig::default()
            },
        );
        let mut raw = ds.x().data().to_vec();
        for w in raw.chunks_mut(cw) {
            cal.normalize_window(w);
        }
        assert!(cal.is_ready(), "session {s}: calibrator never froze");
        let adapted_x = Tensor::from_vec(raw, &[n, CHANNELS, WINDOW]);
        let (_, aacc) = evaluate(&model, &adapted_x, ds.labels(), 128);

        if !adapted_x.allclose(frozen_ds.x(), 0.0) {
            any_window_differs = true;
        }
        frozen_acc_sum += facc;
        adapted_acc_sum += aacc;
        sessions += 1.0;
    }
    let frozen_acc = frozen_acc_sum / sessions;
    let adapted_acc = adapted_acc_sum / sessions;
    println!(
        "DB6 subject {subject}: frozen {:.1}% vs session-adapted {:.1}%",
        frozen_acc * 100.0,
        adapted_acc * 100.0
    );

    assert!(
        any_window_differs,
        "calibration produced bit-identical windows — the adapted transform is a no-op"
    );
    assert!(
        (adapted_acc - frozen_acc).abs() > 1e-4,
        "calibration left accuracy unchanged: frozen {frozen_acc} vs adapted {adapted_acc}"
    );
    assert!(
        adapted_acc > frozen_acc - 0.10,
        "calibration collapsed accuracy: frozen {frozen_acc} vs adapted {adapted_acc}"
    );
    assert!(adapted_acc > 0.125, "adapted model must beat chance");
}
