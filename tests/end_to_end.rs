//! Cross-crate integration tests: data generation → training → evaluation
//! → quantization → deployment analysis.

use bioformers::core::descriptor::{bioformer_descriptor, temponet_descriptor};
use bioformers::core::protocol::{run_pretrained, run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::gap8::deploy::analyze_default;
use bioformers::nn::serialize::{load_state_dict, state_dict};
use bioformers::nn::trainer::evaluate;
use bioformers::nn::Model;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::tensor::Tensor;

/// A Bioformer small enough to train in seconds but structurally complete
/// (conv front-end, attention, class token, LN, head).
fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

#[test]
fn train_evaluate_quantize_deploy_pipeline() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let subject = 0;

    // Train.
    let mut model = small_bioformer(1);
    let outcome = run_standard(&mut model, &db, subject, &ProtocolConfig::quick());
    assert!(
        outcome.overall > 0.125,
        "trained model should beat 8-class chance, got {}",
        outcome.overall
    );

    // Quantize with a calibration subset and compare against fp32.
    let train_raw = db.train_dataset(subject);
    let norm = Normalizer::fit(&train_raw);
    let train_data = norm.apply(&train_raw);
    let dict = state_dict(&mut model);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let qmodel =
        QuantBioformer::convert(model.config(), &dict, &calib).expect("quantized conversion");

    let test = norm.apply(&db.test_dataset(subject));
    let (_, fp32_acc) = evaluate(&model, test.x(), test.labels(), 128);
    let int8_acc = qmodel.accuracy(test.x(), test.labels());
    assert!(
        (fp32_acc - int8_acc).abs() < 0.15,
        "int8 accuracy {int8_acc} too far from fp32 {fp32_acc}"
    );

    // Deployment analysis must accept the trained architecture.
    let report = analyze_default(&bioformer_descriptor(model.config()));
    assert!(report.deployable);
    assert!(report.latency_ms > 0.0 && report.energy_mj > 0.0);
}

#[test]
fn pretraining_protocol_end_to_end() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = small_bioformer(2);
    let outcome = run_pretrained(&mut model, &db, 1, &ProtocolConfig::quick());
    assert!(outcome.overall > 0.125, "accuracy {}", outcome.overall);
    assert_eq!(
        outcome.per_session.len(),
        db.spec().test_sessions().len(),
        "one accuracy per held-out session"
    );
}

#[test]
fn weights_roundtrip_preserves_predictions() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = small_bioformer(3);
    let _ = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());

    let data = db.subject_session_dataset(0, 2);
    let norm = Normalizer::fit(&db.train_dataset(0));
    let nd = norm.apply(&data);
    let before = {
        let mut m = model.clone();
        m.clear_cache();
        m.forward(nd.x(), false)
    };

    // Serialize → fresh model → load → identical logits.
    let dict = state_dict(&mut model);
    let mut fresh = small_bioformer(99);
    load_state_dict(&mut fresh, &dict).expect("load");
    let after = fresh.forward(nd.x(), false);
    assert!(
        before.allclose(&after, 1e-5),
        "loaded model must reproduce predictions exactly"
    );
}

#[test]
fn training_is_reproducible_across_runs() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let cfg = ProtocolConfig::quick();
    let mut a = small_bioformer(7);
    let out_a = run_standard(&mut a, &db, 0, &cfg);
    let mut b = small_bioformer(7);
    let out_b = run_standard(&mut b, &db, 0, &cfg);
    // Data-parallel gradient merge order is deterministic (shards are
    // joined in order), so runs must agree to float tolerance.
    assert!(
        (out_a.overall - out_b.overall).abs() < 1e-3,
        "accuracy diverged: {} vs {}",
        out_a.overall,
        out_b.overall
    );
}

#[test]
fn complexity_ratios_match_paper_claims() {
    // The paper's headline: 4.9× fewer ops & parameters than TEMPONet,
    // ~8× lower energy on GAP8.
    let bio = bioformer_descriptor(&BioformerConfig::bio1());
    let tempo = temponet_descriptor();
    let ops_ratio = tempo.macs() as f64 / bio.macs() as f64;
    assert!((3.9..6.0).contains(&ops_ratio), "ops ratio {ops_ratio}");

    let bio_dep = analyze_default(&bio);
    let tempo_dep = analyze_default(&tempo);
    let energy_ratio = tempo_dep.energy_mj / bio_dep.energy_mj;
    assert!(
        (6.0..11.0).contains(&energy_ratio),
        "energy ratio {energy_ratio} (paper: 8.0×)"
    );
}

#[test]
fn dataset_statistics_are_protocol_shaped() {
    let spec = DatasetSpec::tiny();
    let db = NinaproDb6::generate(&spec);
    // Balanced classes in every split.
    let train = db.train_dataset(0);
    let counts = train.class_counts();
    assert!(counts.iter().all(|&c| c == counts[0]), "{counts:?}");
    // Test split only contains held-out sessions.
    let test = db.test_dataset(0);
    let min_test_session = (spec.sessions / 2) as u16;
    assert!(test.sessions().iter().all(|&s| s >= min_test_session));
}
