//! End-to-end tests of the serving layer: the same trained Bioformer served
//! through [`InferenceEngine`] as fp32 and as the fully-integer int8
//! pipeline, plus micro-batch splitting edge cases on real model backends.

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig, TempoNet};
use bioformers::nn::serialize::state_dict;
use bioformers::nn::Model;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::{GestureClassifier, InferenceEngine};
use bioformers::tensor::Tensor;

fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

/// Normalised windows from the tiny synthetic DB6.
fn tiny_windows(n: usize) -> Tensor {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let data = norm.apply(&train);
    let n = n.min(data.x().dims()[0]);
    Tensor::from_vec(
        data.x().data()[..n * CHANNELS * WINDOW].to_vec(),
        &[n, CHANNELS, WINDOW],
    )
}

#[test]
fn engine_matches_direct_forward_for_all_micro_batch_sizes() {
    let model = small_bioformer(11);
    let windows = tiny_windows(7);
    let direct = model.clone().forward(&windows, false);

    // Non-divisible, divisible, larger-than-batch and unit micro-batches
    // must all reproduce the full-batch logits exactly: micro-batching
    // only partitions rows, it never changes per-row arithmetic.
    for micro in [1, 3, 7, 64] {
        let engine = InferenceEngine::new(Box::new(model.clone())).with_micro_batch(micro);
        let out = engine.serve_checked(&windows).expect("serve");
        assert_eq!(out.logits.dims(), direct.dims());
        assert!(
            out.logits.allclose(&direct, 1e-6),
            "micro={micro}: engine logits diverge from direct forward"
        );
        let expected_batches = windows.dims()[0].div_ceil(micro);
        assert_eq!(out.stats.micro_batches, expected_batches);
        assert_eq!(out.stats.windows, 7);
        assert_eq!(out.predictions, direct.argmax_rows());
    }
}

#[test]
fn empty_request_yields_empty_logits() {
    let engine = InferenceEngine::new(Box::new(small_bioformer(12)));
    let out = engine
        .serve_checked(&Tensor::zeros(&[0, CHANNELS, WINDOW]))
        .expect("serve");
    assert_eq!(out.logits.dims(), &[0, 8]);
    assert!(out.predictions.is_empty());
    assert_eq!(out.stats.micro_batches, 0);
}

#[test]
fn temponet_backend_serves_through_the_same_engine() {
    let engine = InferenceEngine::new(Box::new(TempoNet::new(3))).with_micro_batch(2);
    let out = engine.serve_checked(&tiny_windows(5)).expect("serve");
    assert_eq!(engine.backend_name(), "temponet-fp32");
    assert_eq!(out.logits.dims(), &[5, 8]);
    assert_eq!(out.stats.micro_batches, 3);
    assert!(!out.logits.has_non_finite());
}

/// The tentpole acceptance path: train → quantize → serve the same windows
/// through both precisions via the one trait, and require the int8 backend
/// to track the fp32 one.
#[test]
fn fp32_and_int8_backends_agree_on_tiny_dataset() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = small_bioformer(13);
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    assert!(
        outcome.overall > 0.125,
        "training failed: {}",
        outcome.overall
    );

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("conversion");

    let test = norm.apply(&db.test_dataset(0));
    let windows = test.x().clone();
    let n = windows.dims()[0];
    assert!(n > 0);

    let fp32 = InferenceEngine::new(Box::new(model.clone())).with_micro_batch(16);
    let int8 = InferenceEngine::new(Box::new(qmodel)).with_micro_batch(16);
    assert_eq!(fp32.num_classes(), int8.num_classes());

    let out32 = fp32.serve_checked(&windows).expect("serve");
    let out8 = int8.serve_checked(&windows).expect("serve");
    assert_eq!(out32.logits.dims(), out8.logits.dims());

    let agree = out32
        .predictions
        .iter()
        .zip(out8.predictions.iter())
        .filter(|(a, b)| a == b)
        .count() as f32
        / n as f32;
    // Disagreements concentrate on low-margin windows (the synthetic DB6 is
    // deliberately hard — fp32 ceiling ≈66%), so require solid prediction
    // agreement plus paper-style accuracy tracking between precisions.
    assert!(
        agree > 0.7,
        "int8 backend agrees with fp32 on only {agree:.2} of {n} windows"
    );
    let acc = |preds: &[usize]| {
        preds
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count() as f32
            / n as f32
    };
    let (acc32, acc8) = (acc(&out32.predictions), acc(&out8.predictions));
    assert!(
        (acc32 - acc8).abs() < 0.15,
        "int8 accuracy {acc8} too far from fp32 {acc32}"
    );

    // Both backends ran micro-batched.
    assert_eq!(out32.stats.micro_batches, n.div_ceil(16));
    assert_eq!(out8.stats.micro_batches, n.div_ceil(16));
    assert!(out32.stats.total > std::time::Duration::ZERO);
}

/// Fast end-to-end smoke: 1-epoch train → quantize → serve both precisions.
/// Mirrors the `--smoke` experiment preset at test scale; runs in seconds
/// under `cargo test -q`.
#[test]
fn smoke_train_quantize_serve() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = small_bioformer(14);
    let cfg = ProtocolConfig {
        standard_epochs: 1,
        ..ProtocolConfig::quick()
    };
    let _ = run_standard(&mut model, &db, 0, &cfg);

    let norm = Normalizer::fit(&db.train_dataset(0));
    let calib = norm.apply(&db.train_dataset(0));
    let calib_n = calib.x().dims()[0].min(32);
    let calib = Tensor::from_vec(
        calib.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("conversion");

    let windows = tiny_windows(9);
    for engine in [
        InferenceEngine::new(Box::new(model)).with_micro_batch(4),
        InferenceEngine::new(Box::new(qmodel)).with_micro_batch(4),
    ] {
        let out = engine.serve_checked(&windows).expect("serve");
        assert_eq!(out.logits.dims(), &[9, 8]);
        assert_eq!(out.predictions.len(), 9);
        assert_eq!(out.stats.micro_batches, 3);
        assert!(!out.logits.has_non_finite());
        assert!(out.predictions.iter().all(|&p| p < engine.num_classes()));
    }
}

/// The trait object itself is usable directly (without the engine), which
/// is what backend sharding will build on.
#[test]
fn trait_objects_are_interchangeable() {
    let backends: Vec<Box<dyn GestureClassifier>> =
        vec![Box::new(small_bioformer(15)), Box::new(TempoNet::new(15))];
    let windows = tiny_windows(2);
    for b in &backends {
        assert_eq!(b.num_classes(), 8);
        assert_eq!(b.predict_batch(&windows).dims(), &[2, 8]);
        assert!(!b.name().is_empty());
    }
}
