//! End-to-end tests of the asynchronous serving engine: cross-request
//! coalescing, deadline expiry, bounded-queue backpressure, graceful
//! shutdown with in-flight requests, and fp32-vs-int8 agreement when both
//! precisions answer through [`AsyncEngine`].

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::nn::InferForward;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::{AsyncEngine, AsyncEngineConfig, GestureClassifier, ServeError};
use bioformers::tensor::Tensor;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

/// Normalised windows from the tiny synthetic DB6.
fn tiny_windows(n: usize) -> Tensor {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let data = norm.apply(&train);
    let n = n.min(data.x().dims()[0]);
    Tensor::from_vec(
        data.x().data()[..n * CHANNELS * WINDOW].to_vec(),
        &[n, CHANNELS, WINDOW],
    )
}

fn window_at(windows: &Tensor, i: usize) -> Tensor {
    let sample = CHANNELS * WINDOW;
    Tensor::from_vec(
        windows.data()[i * sample..(i + 1) * sample].to_vec(),
        &[1, CHANNELS, WINDOW],
    )
}

/// A backend that blocks inside `predict_batch` until the test releases it,
/// so tests can deterministically hold a worker busy while they stage the
/// queue. Also records every batch size it executes.
struct GatedBackend {
    classes: usize,
    started: mpsc::Sender<usize>,
    release: Mutex<mpsc::Receiver<()>>,
    seen: Arc<Mutex<Vec<usize>>>,
}

impl GatedBackend {
    /// Returns (backend, started-notifications, release-handle, batch-size log).
    #[allow(clippy::type_complexity)]
    fn new(
        classes: usize,
    ) -> (
        Self,
        mpsc::Receiver<usize>,
        mpsc::Sender<()>,
        Arc<Mutex<Vec<usize>>>,
    ) {
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let seen = Arc::new(Mutex::new(Vec::new()));
        (
            GatedBackend {
                classes,
                started: started_tx,
                release: Mutex::new(release_rx),
                seen: Arc::clone(&seen),
            },
            started_rx,
            release_tx,
            seen,
        )
    }
}

impl GestureClassifier for GatedBackend {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        self.seen.lock().unwrap().push(n);
        let _ = self.started.send(n);
        // Block until the test sends a release token (or hangs up).
        let _ = self.release.lock().unwrap().recv();
        Tensor::zeros(&[n, self.classes])
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn name(&self) -> &str {
        "gated"
    }
}

#[test]
fn concurrent_clients_get_logits_identical_to_direct_forward() {
    let model = small_bioformer(21);
    let windows = tiny_windows(12);
    let direct = model.forward_infer(&windows);
    let n = windows.dims()[0];

    let engine = Arc::new(AsyncEngine::with_config(
        Box::new(model),
        AsyncEngineConfig::default()
            .with_workers(2)
            .with_micro_batch(8)
            .with_linger(Duration::from_millis(1)),
    ));

    // One client thread per window, all submitting concurrently.
    let outputs: Vec<(usize, Tensor)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..n {
            let engine = Arc::clone(&engine);
            let w = window_at(&windows, i);
            handles.push(scope.spawn(move || (i, engine.classify(w).unwrap().logits)));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, logits) in outputs {
        assert_eq!(logits.dims(), &[1, 8]);
        let expect = direct.row(i);
        assert!(
            logits.data().iter().zip(expect).all(|(a, b)| a == b),
            "window {i}: async logits differ from direct forward"
        );
    }
    let stats = Arc::into_inner(engine).unwrap().shutdown();
    assert_eq!(stats.requests, n);
    assert_eq!(stats.windows, n);
    assert_eq!(stats.expired, 0);
}

#[test]
fn backlogged_requests_coalesce_into_shared_batches() {
    let (backend, started, release, seen) = GatedBackend::new(4);
    let engine = AsyncEngine::with_config(
        Box::new(backend),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_micro_batch(16)
            .with_linger(Duration::ZERO),
    );

    // First request occupies the single worker inside the gated backend.
    let r0 = engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap();
    assert_eq!(started.recv().unwrap(), 1);

    // Four more queue up behind it while the worker is busy.
    let pending: Vec<_> = (0..4)
        .map(|_| engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap())
        .collect();
    assert_eq!(engine.queue_depth(), 4);

    // Release the first batch, then the coalesced one.
    release.send(()).unwrap();
    assert_eq!(started.recv().unwrap(), 4, "backlog must ride one batch");
    release.send(()).unwrap();

    assert_eq!(r0.wait().unwrap().batch_requests, 1);
    for p in pending {
        let out = p.wait().unwrap();
        assert_eq!(out.batch_requests, 4);
        assert_eq!(out.batch_windows, 4);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.batches, 2);
    assert_eq!(stats.coalesced_batches, 1);
    assert!(stats.requests_per_batch() > 2.0);
    assert_eq!(*seen.lock().unwrap(), vec![1, 4]);
}

#[test]
fn deadline_expires_before_service() {
    let (backend, started, release, _seen) = GatedBackend::new(4);
    let engine = AsyncEngine::with_config(
        Box::new(backend),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_linger(Duration::ZERO),
    );

    // Hold the worker busy, then queue a request with a tiny deadline.
    let r0 = engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap();
    assert_eq!(started.recv().unwrap(), 1);
    let doomed = engine
        .submit_with_deadline(Tensor::zeros(&[1, 2, 5]), Duration::from_millis(1))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10));
    release.send(()).unwrap();

    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExpired)));
    assert!(r0.wait().is_ok());
    let stats = engine.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.requests, 1);
}

#[test]
fn declared_backend_shape_rejects_malformed_requests_upfront() {
    let engine = AsyncEngine::with_config(
        Box::new(small_bioformer(25)),
        AsyncEngineConfig::default().with_workers(1),
    );
    // Transposed window: rejected at submission (no worker involvement,
    // no shape pinning) because the fp32 backend declares [14, 300].
    assert!(matches!(
        engine.submit(Tensor::zeros(&[1, WINDOW, CHANNELS])),
        Err(ServeError::BadRequest(_))
    ));
    // Correct traffic is unaffected afterwards.
    let out = engine.classify(tiny_windows(1)).unwrap();
    assert_eq!(out.logits.dims(), &[1, 8]);
    let stats = engine.shutdown();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn generous_deadline_is_served() {
    let model = small_bioformer(22);
    let engine = AsyncEngine::with_config(
        Box::new(model),
        AsyncEngineConfig::default().with_workers(1),
    );
    let out = engine
        .submit_with_deadline(tiny_windows(2), Duration::from_secs(60))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(out.logits.dims(), &[2, 8]);
    assert_eq!(engine.shutdown().expired, 0);
}

#[test]
fn bounded_queue_pushes_back_when_full() {
    let (backend, started, release, _seen) = GatedBackend::new(4);
    let engine = AsyncEngine::with_config(
        Box::new(backend),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_linger(Duration::ZERO),
    );

    // Worker busy on r0; r1 fills the capacity-1 queue; r2 must shed.
    let r0 = engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap();
    assert_eq!(started.recv().unwrap(), 1);
    let r1 = engine.submit(Tensor::zeros(&[1, 2, 5])).unwrap();
    assert_eq!(engine.queue_depth(), 1);
    assert_eq!(
        engine.try_submit(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
        ServeError::QueueFull
    );

    // Draining the queue restores capacity.
    release.send(()).unwrap();
    release.send(()).unwrap();
    assert!(r0.wait().is_ok());
    assert!(r1.wait().is_ok());
    let r3 = engine.try_submit(Tensor::zeros(&[1, 2, 5])).unwrap();
    release.send(()).unwrap();
    assert!(r3.wait().is_ok());
}

#[test]
fn shutdown_drains_inflight_requests() {
    let model = small_bioformer(23);
    let engine = AsyncEngine::with_config(
        Box::new(model),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_micro_batch(4)
            .with_linger(Duration::ZERO),
    );

    // Queue a burst, then shut down immediately: every accepted request
    // must still be served (graceful drain), none cancelled.
    let pending: Vec<_> = (0..6)
        .map(|_| engine.submit(tiny_windows(1)).unwrap())
        .collect();
    let stats = engine.shutdown();
    for p in pending {
        let out = p.wait().expect("drained request must be served");
        assert_eq!(out.logits.dims(), &[1, 8]);
    }
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.windows, 6);
    assert_eq!(stats.expired, 0);
}

/// The tentpole acceptance path, async edition: train → quantize → serve
/// the same windows through fp32 and int8 `AsyncEngine`s from concurrent
/// clients, and require the precisions to track each other.
#[test]
fn fp32_and_int8_agree_through_async_engines() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = small_bioformer(24);
    let cfg = ProtocolConfig {
        standard_epochs: 1,
        ..ProtocolConfig::quick()
    };
    let _ = run_standard(&mut model, &db, 0, &cfg);

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(32);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("conversion");

    // Sync references computed before the models move into the engines.
    let windows = tiny_windows(10);
    let n = windows.dims()[0];
    let fp32_direct = model.forward_infer(&windows);
    let int8_direct = qmodel.forward_batch(&windows);

    let async_cfg = AsyncEngineConfig::default()
        .with_workers(1)
        .with_micro_batch(8)
        .with_linger(Duration::from_millis(1));
    let fp32 = Arc::new(AsyncEngine::with_config(Box::new(model), async_cfg.clone()));
    let int8 = Arc::new(AsyncEngine::with_config(Box::new(qmodel), async_cfg));

    let collect = |engine: &Arc<AsyncEngine>| -> Vec<usize> {
        let preds: Vec<(usize, usize)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..n {
                let engine = Arc::clone(engine);
                let w = window_at(&windows, i);
                handles.push(scope.spawn(move || {
                    let out = engine.classify(w).unwrap();
                    (i, out.predictions[0])
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut by_index = vec![0usize; n];
        for (i, p) in preds {
            by_index[i] = p;
        }
        by_index
    };

    let fp32_preds = collect(&fp32);
    let int8_preds = collect(&int8);

    // Async serving must not change either precision's answers…
    assert_eq!(fp32_preds, fp32_direct.argmax_rows());
    assert_eq!(int8_preds, int8_direct.argmax_rows());
    // …so fp32/int8 agreement matches the sync engines' agreement exactly.
    let agree = fp32_preds
        .iter()
        .zip(int8_preds.iter())
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        agree as f32 / n as f32 > 0.5,
        "int8 agrees with fp32 on only {agree}/{n} windows"
    );

    let s32 = Arc::into_inner(fp32).unwrap().shutdown();
    let s8 = Arc::into_inner(int8).unwrap().shutdown();
    assert_eq!(s32.requests, n);
    assert_eq!(s8.requests, n);
}
