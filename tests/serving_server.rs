//! Multi-tenant `StreamServer` behaviour: fairness under flooding,
//! fault-injection (disconnect, idle eviction, reconnect seams), and the
//! per-tenant statistics rollup invariant.
//!
//! These tests run the server in-process over a fast mock backend so the
//! scheduling properties (round-robin quanta, bounded buffers, eviction
//! timing) are exercised without model-inference noise; the TCP wire path
//! is covered by `tests/serving_gateway.rs`, and stream/offline
//! bit-equivalence of the underlying sessions by `tests/serving_stream.rs`.

use bioformers::serve::{
    DecisionPolicy, Engine, GestureClassifier, GestureEvent, InferenceEngine, LatencyBudget,
    ModelZoo, ServeError, SessionHandle, SessionOptions, ShardedEngine, StreamConfig, StreamServer,
    StreamServerConfig, StreamSession, StreamSummary,
};
use bioformers::tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHANNELS: usize = 2;
const WINDOW: usize = 8;
/// Interleaved samples per extracted window (slide == window).
const CHUNK: usize = CHANNELS * WINDOW;

/// A fast deterministic classifier: logits are fixed linear functions of
/// the window, so streamed and offline paths agree bit-for-bit and a
/// pseudo-random signal hops between classes (events actually happen).
struct MockBackend;

impl GestureClassifier for MockBackend {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        let len = CHANNELS * WINDOW;
        Tensor::from_fn(&[n, 4], |i| {
            let (row, class) = (i / 4, i % 4);
            let x = &windows.data()[row * len..(row + 1) * len];
            let mut score = 0.0f32;
            for (j, &v) in x.iter().enumerate() {
                score += v * (((j * (class + 2)) % 11) as f32 / 11.0 - 0.5);
            }
            score
        })
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "mock"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((CHANNELS, WINDOW))
    }
}

/// Deterministic pseudo-random interleaved stream of `windows` windows.
fn signal(windows: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..windows * CHUNK)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn stream_cfg() -> StreamConfig {
    StreamConfig::new(CHANNELS, WINDOW)
        .with_lookahead(0)
        .with_policy(DecisionPolicy {
            vote_depth: 3,
            min_hold: 1,
            confidence_floor: 0.0,
        })
}

fn mock_engine() -> Arc<dyn Engine> {
    Arc::new(InferenceEngine::new(Box::new(MockBackend)))
}

/// The uninterrupted single-session reference for `stream`.
fn reference(stream: &[f32]) -> StreamSummary {
    let mut session = StreamSession::new(mock_engine(), stream_cfg()).expect("reference session");
    let mut events = Vec::new();
    for chunk in stream.chunks(CHUNK) {
        events.extend(session.push_samples(chunk).expect("reference push"));
    }
    let mut summary = session.finish().expect("reference finish");
    events.extend(std::mem::take(&mut summary.events));
    summary.events = events;
    summary
}

/// Polls until `f` succeeds or the deadline passes.
fn wait_for<T>(mut f: impl FnMut() -> Option<T>, what: &str) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Satellite: one session flooding at ~100× the others' rate saturates its
/// own bounded buffer (observing `QueueFull` through `try_send`) while all
/// 7 normal sessions stream to completion — none ever sees `Unavailable`,
/// and each decides exactly its expected windows with the exact reference
/// predictions and events.
#[test]
fn flooding_session_cannot_starve_the_pool() {
    let server = Arc::new(
        StreamServer::start(
            mock_engine(),
            StreamServerConfig::new(stream_cfg())
                .with_max_sessions(8)
                .with_inbound_chunks(4)
                .with_quantum(2),
        )
        .expect("server"),
    );

    const NORMAL_WINDOWS: usize = 40;
    const FLOOD_CHUNKS: usize = 100 * NORMAL_WINDOWS;

    let flooder = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let handle = server.connect("flooder").expect("flooder connect");
            let noise = signal(1, 999);
            let mut queue_full = 0usize;
            let mut sent = 0usize;
            // Fire-and-forget at maximum rate: a rejected chunk is simply
            // dropped, which is exactly what a misbehaving client does.
            while sent < FLOOD_CHUNKS {
                match handle.try_send(&noise) {
                    Ok(()) => sent += 1,
                    Err(ServeError::QueueFull) => queue_full += 1,
                    Err(e) => panic!("flooder must only ever see QueueFull, got {e}"),
                }
            }
            let report = handle.finish().expect("flooder finish");
            (queue_full, report.summary.windows)
        })
    };

    let normals: Vec<_> = (0..7)
        .map(|i| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let stream = signal(NORMAL_WINDOWS, 7 + i);
                let handle = server.connect(&format!("tenant-{i}")).expect("connect");
                let mut events = Vec::new();
                for chunk in stream.chunks(CHUNK) {
                    // The blocking path: backpressure waits, never errors.
                    handle.send(chunk).expect("normal send never fails");
                    events.extend(handle.poll_events().expect("poll"));
                }
                let report = handle.finish().expect("normal finish");
                events.extend(report.summary.events.clone());
                (stream, report, events)
            })
        })
        .collect();

    for normal in normals {
        let (stream, report, events) = normal.join().expect("normal thread");
        let expect = reference(&stream);
        assert_eq!(report.summary.windows, NORMAL_WINDOWS);
        assert_eq!(report.summary.predictions, expect.predictions);
        assert_eq!(report.summary.confidences, expect.confidences);
        assert_eq!(events, expect.events, "normal session's event schedule");
    }
    let (queue_full, flooded_windows) = flooder.join().expect("flooder thread");
    assert!(
        queue_full > 0,
        "a 100x flooder must hit its own buffer bound at least once"
    );
    assert_eq!(flooded_windows, FLOOD_CHUNKS, "accepted chunks all served");

    let stats = server.stats();
    assert!(stats.rollup_consistent());
    assert_eq!(stats.totals.sessions, 8);
    assert_eq!(stats.totals.finished, 8);
}

/// Fault injection: dropping a handle mid-stream parks the session and
/// frees the slot for the next tenant; the parked stream resumes without
/// losing a window.
#[test]
fn mid_stream_disconnect_frees_the_slot() {
    let server = StreamServer::start(
        mock_engine(),
        StreamServerConfig::new(stream_cfg()).with_max_sessions(1),
    )
    .expect("server");

    let stream = signal(12, 42);
    let handle = server.connect("alice").expect("first connect");
    let token = handle.token();
    handle.send(&stream[..6 * CHUNK]).expect("send");
    // The pool is full while alice streams.
    assert_eq!(
        server.connect("bob").unwrap_err(),
        ServeError::Unavailable,
        "second session must not fit a 1-slot pool"
    );
    drop(handle); // Mid-stream disconnect: no finish, no bye.

    // The slot frees as soon as the pump parks the checkpoint.
    let bob = wait_for(
        || server.connect("bob").ok(),
        "slot to free after disconnect",
    );
    assert_eq!(server.stats().parked_sessions, 1);
    assert_eq!(server.stats().totals.disconnects, 1);
    drop(bob);
    // Wait out bob's detach too, so the pool has a free slot again and the
    // next check exercises the token validation, not the slot count.
    wait_for(
        || (server.stats().live_sessions == 0).then_some(()),
        "bob's slot to free",
    );

    // Nobody can steal the parked session.
    let err = server.resume("mallory", token).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)), "got {err:?}");

    // Alice resumes once bob's dropped handle frees the slot again.
    let alice = wait_for(
        || server.resume("alice", token).ok(),
        "resume after bob detaches",
    );
    for chunk in stream[6 * CHUNK..].chunks(CHUNK) {
        alice.send(chunk).expect("resumed send");
    }
    let report = alice.finish().expect("resumed finish");
    let expect = reference(&stream);
    assert_eq!(report.summary.windows, 12);
    assert_eq!(report.summary.predictions, expect.predictions);
}

/// Collects a session's full event timeline: everything polled so far plus
/// the finish-time remainder.
fn finish_collect(handle: SessionHandle, polled: &mut Vec<GestureEvent>) -> StreamSummary {
    let report = handle.finish().expect("finish");
    let mut events = std::mem::take(polled);
    events.extend(report.summary.events.clone());
    let mut summary = report.summary;
    summary.events = events;
    summary
}

/// Fault injection: the idle timeout evicts a silent session (the handle
/// observes `ServeError::Evicted`), its checkpoint parks, and a resumed
/// session continues with the decision state intact — the seam duplicates
/// no event and loses none, bit-matching an uninterrupted stream.
#[test]
fn idle_eviction_then_resume_keeps_the_event_timeline_intact() {
    let server = StreamServer::start(
        mock_engine(),
        StreamServerConfig::new(stream_cfg()).with_idle_timeout(Some(Duration::from_millis(40))),
    )
    .expect("server");

    // Cut mid-decision AND mid-frame: 9 windows plus 5 leftover samples
    // make the checkpoint carry both smoother state and a partial frame.
    let stream = signal(20, 1234);
    let cut = 9 * CHUNK + 5;

    let handle = server.connect("clinic").expect("connect");
    let mut events = Vec::new();
    for chunk in stream[..cut].chunks(CHUNK) {
        handle.send(chunk).expect("send");
        events.extend(handle.poll_events().expect("poll"));
    }
    // Go silent; the eviction must fire on its own.
    let token = handle.token();
    wait_for(
        || match handle.poll_events() {
            Err(ServeError::Evicted) => Some(()),
            Ok(more) => {
                events.extend(more);
                None
            }
            Err(e) => panic!("unexpected poll error {e}"),
        },
        "idle eviction",
    );
    // Every session entry point now reports the eviction.
    assert_eq!(handle.send(&stream[cut..cut + 1]), Err(ServeError::Evicted));
    assert_eq!(server.stats().totals.evictions, 1);
    assert_eq!(server.stats().parked_sessions, 1);

    let resumed = server.resume("clinic", token).expect("resume");
    assert_ne!(resumed.token(), token, "resume mints a fresh token");
    for chunk in stream[cut..].chunks(CHUNK) {
        resumed.send(chunk).expect("resumed send");
        events.extend(resumed.poll_events().expect("resumed poll"));
    }
    let summary = finish_collect(resumed, &mut events);

    let expect = reference(&stream);
    assert_eq!(summary.windows, expect.windows);
    assert_eq!(summary.predictions, expect.predictions);
    assert_eq!(summary.confidences, expect.confidences);
    assert_eq!(
        summary.events, expect.events,
        "the eviction/resume seam must neither duplicate nor lose events"
    );
    // The old handle is a zombie; dropping it must not disturb the
    // resumed session's completed bookkeeping.
    drop(handle);
    assert_eq!(server.stats().totals.reconnects, 1);
}

/// Satellite: per-session totals sum into per-tenant counters, which sum
/// into the pool totals — mirroring `tests/serving_sharded.rs`'s
/// per-replica invariant one layer up (and re-checking that invariant via
/// the new `PoolStats::rollup_consistent`).
#[test]
fn per_tenant_stats_roll_up_into_pool_totals() {
    let server = StreamServer::start(
        mock_engine(),
        StreamServerConfig::new(stream_cfg()).with_max_sessions(4),
    )
    .expect("server");

    // Tenant A: two finished sessions; tenant B: one disconnected session.
    let mut session_stats = Vec::new();
    for seed in [1u64, 2] {
        let stream = signal(10, seed);
        let handle = server.connect("tenant-a").expect("connect a");
        for chunk in stream.chunks(CHUNK) {
            handle.send(chunk).expect("send");
        }
        session_stats.push(handle.finish().expect("finish").stats);
    }
    let b_stream = signal(6, 3);
    let b = server.connect("tenant-b").expect("connect b");
    for chunk in b_stream.chunks(CHUNK) {
        b.send(chunk).expect("send");
    }
    let b_token = b.disconnect().expect("disconnect b");

    let stats = wait_for(
        || {
            let s = server.stats();
            // Wait until the pump has drained everything we queued.
            (s.totals.windows == 26).then_some(s)
        },
        "all windows decided",
    );
    assert!(
        stats.rollup_consistent(),
        "totals != sum(per_tenant): {stats:?}"
    );
    assert_eq!(stats.per_tenant.len(), 2);

    // Per-session reports sum into tenant-a's counters.
    let a = stats
        .per_tenant
        .iter()
        .find(|t| t.tenant == "tenant-a")
        .expect("tenant-a");
    assert_eq!(a.counters.sessions, 2);
    assert_eq!(a.counters.finished, 2);
    assert_eq!(
        a.counters.chunks,
        session_stats.iter().map(|s| s.chunks).sum::<u64>()
    );
    assert_eq!(
        a.counters.samples,
        session_stats.iter().map(|s| s.samples).sum::<u64>()
    );
    assert_eq!(
        a.counters.windows,
        session_stats.iter().map(|s| s.windows).sum::<u64>()
    );
    assert_eq!(
        a.counters.events,
        session_stats.iter().map(|s| s.events).sum::<u64>()
    );

    let b_stats = stats
        .per_tenant
        .iter()
        .find(|t| t.tenant == "tenant-b")
        .expect("tenant-b");
    assert_eq!(b_stats.counters.disconnects, 1);
    assert_eq!(b_stats.counters.windows, 6);

    // The counters survive the park: resuming and finishing B's stream
    // keeps the tenant rollup consistent and completes the session.
    let b = server.resume("tenant-b", b_token).expect("resume b");
    let report = b.finish().expect("finish b");
    assert_eq!(report.stats.windows, 6);
    let stats = server.stats();
    assert!(stats.rollup_consistent());
    assert_eq!(stats.totals.finished, 3);
    assert_eq!(stats.totals.reconnects, 1);

    // The same invariant one layer down: the sharded pool's per-replica
    // rollup, via the helper this PR adds.
    let pool = ShardedEngine::builder()
        .add_replica(Box::new(MockBackend))
        .add_replica(Box::new(MockBackend))
        .build();
    for seed in [4u64, 5, 6] {
        let chunk = signal(2, seed);
        let x = Tensor::from_vec(chunk, &[2, CHANNELS, WINDOW]);
        pool.classify(x).expect("pool classify");
    }
    let pool_stats = ShardedEngine::stats(&pool);
    assert!(pool_stats.rollup_consistent());
    let _ = Box::new(pool).shutdown();
}

/// Server shutdown fails open sessions with `ShuttingDown` and drops
/// parked checkpoints; connects are refused afterwards.
#[test]
fn shutdown_fails_open_sessions_and_refuses_connects() {
    let server =
        StreamServer::start(mock_engine(), StreamServerConfig::new(stream_cfg())).expect("server");
    let handle = server.connect("t").expect("connect");
    handle.send(&signal(1, 9)).expect("send");
    let stats = server.shutdown();
    assert!(stats.rollup_consistent());
    assert_eq!(server.connect("t").unwrap_err(), ServeError::ShuttingDown);
    let err = handle.send(&signal(1, 9)).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
}

/// A config with a zero bound is rejected up front.
#[test]
fn zero_bounds_are_rejected() {
    for cfg in [
        StreamServerConfig::new(stream_cfg()).with_max_sessions(0),
        StreamServerConfig::new(stream_cfg()).with_inbound_chunks(0),
        StreamServerConfig::new(stream_cfg()).with_quantum(0),
    ] {
        let err = StreamServer::start(mock_engine(), cfg).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)), "got {err:?}");
    }
}

/// Satellite: a per-session latency budget flags a violating session
/// exactly once (not once per scheduling round), the flag lands in the
/// pool's `slo_violations` rollup, and a per-session override via
/// `SessionOptions::with_slo` takes precedence over the server default.
#[test]
fn slo_violation_flags_once_and_respects_per_session_override() {
    // A zero budget is unmeetable: any round with recorded stage latency
    // violates it. `slo_evict` stays off, so the session keeps streaming.
    let server = StreamServer::start(
        mock_engine(),
        StreamServerConfig::new(stream_cfg()).with_slo(LatencyBudget::new(Duration::ZERO)),
    )
    .expect("server");

    let handle = server.connect("hog").expect("connect");
    let stream = signal(12, 77);
    for chunk in stream.chunks(CHUNK) {
        handle.send(chunk).expect("send");
    }
    let report = handle.finish().expect("finish");
    assert_eq!(report.summary.windows, 12, "flagging must not drop work");
    wait_for(
        || (server.stats().totals.slo_violations == 1).then_some(()),
        "slo violation flag",
    );

    // A lenient per-session override wins over the strict server default.
    let lenient = server
        .connect_with(
            "patient",
            SessionOptions::default().with_slo(LatencyBudget::new(Duration::from_secs(3600))),
        )
        .expect("connect_with");
    for chunk in signal(8, 78).chunks(CHUNK) {
        lenient.send(chunk).expect("send");
    }
    lenient.finish().expect("finish");

    let stats = server.stats();
    assert_eq!(
        stats.totals.slo_violations, 1,
        "only the strict session may be flagged, and only once"
    );
    assert!(stats.rollup_consistent());
}

/// Satellite: with `slo_evict` on, a budget-violating session is parked
/// like an idle one — the handle observes `Evicted`, the checkpoint is
/// resumable, and (because the checkpoint carries the session's stage
/// recorder) the resumed session deterministically re-trips the budget.
#[test]
fn slo_eviction_parks_a_resumable_session() {
    let server = StreamServer::start(
        mock_engine(),
        StreamServerConfig::new(stream_cfg())
            .with_slo(LatencyBudget::new(Duration::ZERO))
            .with_slo_evict(true),
    )
    .expect("server");

    let handle = server.connect("hog").expect("connect");
    let token = handle.token();
    wait_for(
        || match handle.send(&signal(1, 7)) {
            Err(ServeError::Evicted) => Some(()),
            Ok(()) => None,
            Err(e) => panic!("unexpected send error {e}"),
        },
        "slo eviction",
    );
    wait_for(
        || {
            let s = server.stats();
            (s.totals.evictions == 1 && s.totals.slo_violations == 1 && s.parked_sessions == 1)
                .then_some(())
        },
        "slo eviction counters",
    );

    // The parked checkpoint resumes — and because its stage recorder came
    // back with it, the very next round re-evaluates the (still zero)
    // budget against real history and evicts again.
    let resumed = server.resume("hog", token).expect("resume");
    wait_for(
        || match resumed.send(&signal(1, 8)) {
            Err(ServeError::Evicted) => Some(()),
            Ok(()) => None,
            Err(e) => panic!("unexpected resumed send error {e}"),
        },
        "second slo eviction",
    );
    wait_for(
        || {
            let s = server.stats();
            (s.totals.evictions == 2 && s.totals.slo_violations == 2).then_some(())
        },
        "second eviction counters",
    );
    let stats = server.stats();
    assert_eq!(stats.totals.reconnects, 1);
    assert!(stats.rollup_consistent());
}

/// Tentpole: sessions pick their model by name from the zoo at connect
/// time; work lands on the named engine (visible per-model in
/// `ZooStats`), an unknown name is a typed `BadRequest`, and the zoo
/// rollup stays consistent with the per-tenant one.
#[test]
fn sessions_select_zoo_models_and_zoo_stats_roll_up() {
    let mut zoo = ModelZoo::new();
    zoo.register("alpha", mock_engine())
        .expect("register alpha");
    zoo.register("beta", mock_engine()).expect("register beta");
    let server = StreamServer::start_zoo(
        Arc::new(zoo),
        StreamServerConfig::new(stream_cfg()).with_max_sessions(4),
    )
    .expect("server");

    // One session on the default (alpha), one explicitly on beta.
    let on_default = server.connect("clinic/a").expect("connect");
    for chunk in signal(4, 31).chunks(CHUNK) {
        on_default.send(chunk).expect("send");
    }
    assert_eq!(on_default.finish().expect("finish").summary.windows, 4);

    let on_beta = server
        .connect_with("clinic/b", SessionOptions::default().with_model("beta"))
        .expect("connect_with");
    for chunk in signal(6, 32).chunks(CHUNK) {
        on_beta.send(chunk).expect("send");
    }
    assert_eq!(on_beta.finish().expect("finish").summary.windows, 6);

    let err = server
        .connect_with("clinic/c", SessionOptions::default().with_model("gamma"))
        .expect_err("unknown model");
    assert!(matches!(err, ServeError::BadRequest(_)), "got {err:?}");

    let stats = server.shutdown();
    assert!(stats.rollup_consistent());
    let windows_of = |name: &str| {
        let m = stats
            .zoo
            .models
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("model {name} missing from ZooStats"));
        (m.default, m.engine.windows)
    };
    assert_eq!(windows_of("alpha"), (true, 4), "default routes to alpha");
    assert_eq!(
        windows_of("beta"),
        (false, 6),
        "named session routes to beta"
    );
}
