//! The unified `Engine` trait: all three serving engines —
//! `InferenceEngine`, `AsyncEngine`, `ShardedEngine` — driven through
//! `&dyn Engine` by one shared test body, with bit-identical logits, one
//! shared error surface, unified stats and draining shutdown.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::semg::{CHANNELS, WINDOW};
use bioformers::serve::prelude::*;
use bioformers::tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

/// Deterministic pseudo-random windows `[n, CHANNELS, WINDOW]`.
fn windows(n: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[n, CHANNELS, WINDOW], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// One shared model instance behind all three engine topologies.
fn engines(model: &Arc<Bioformer>) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(InferenceEngine::new(Box::new(Arc::clone(model))).with_micro_batch(4)),
        Box::new(AsyncEngine::with_config(
            Box::new(Arc::clone(model)),
            AsyncEngineConfig::default()
                .with_workers(1)
                .with_micro_batch(4)
                .with_linger(Duration::ZERO),
        )),
        Box::new(
            ShardedEngine::builder()
                .add_replica(Box::new(Arc::clone(model)))
                .build(),
        ),
    ]
}

/// The acceptance-criterion test: one generic body exercises every engine
/// through `&dyn Engine` — same submissions, same expectations, logits
/// bit-matching the direct forward.
#[test]
fn all_three_engines_serve_identically_through_dyn_engine() {
    let model = Arc::new(small_bioformer(81));
    let w = windows(5, 7);
    let direct = model.predict_batch(&w);
    let engine_list = engines(&model);
    assert_eq!(
        engine_list.iter().map(|e| e.kind()).collect::<Vec<_>>(),
        vec!["inference", "async", "sharded"]
    );

    for engine in &engine_list {
        let engine: &dyn Engine = engine.as_ref();
        assert_eq!(engine.num_classes(), 8, "{}", engine.kind());
        assert_eq!(
            engine.input_shape(),
            Some((CHANNELS, WINDOW)),
            "{}",
            engine.kind()
        );
        assert_eq!(engine.backends(), vec!["bioformer-fp32".to_string()]);

        // classify: logits bit-match the direct forward.
        let out = engine.classify(w.clone()).unwrap();
        assert_eq!(out.logits.data(), direct.data(), "{}", engine.kind());
        assert_eq!(out.predictions, direct.argmax_rows());

        // submit → wait.
        let out = engine.submit(w.clone()).unwrap().wait().unwrap();
        assert_eq!(out.logits.data(), direct.data());

        // try_submit (no load: must be accepted everywhere).
        let out = engine.try_submit(w.clone()).unwrap().wait().unwrap();
        assert_eq!(out.logits.data(), direct.data());

        // A generous deadline is met by every topology.
        let out = engine
            .submit_with_deadline(w.clone(), Duration::from_secs(30))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.logits.data(), direct.data());

        // Zero-window requests are served, not rejected.
        let out = engine
            .classify(Tensor::zeros(&[0, CHANNELS, WINDOW]))
            .unwrap();
        assert_eq!(out.logits.dims(), &[0, 8]);
        assert!(out.predictions.is_empty());

        // One error surface: bad rank and bad shape are BadRequest for
        // every engine — no panicking entry points.
        for bad in [Tensor::zeros(&[2, 2]), Tensor::zeros(&[1, 3, 7])] {
            let err = engine.classify(bad).unwrap_err();
            assert!(
                matches!(err, ServeError::BadRequest(_)),
                "{}: {err:?}",
                engine.kind()
            );
        }
    }

    // Unified stats + shutdown: every engine served the same traffic.
    for engine in engine_list {
        let kind = engine.kind();
        // The concurrent engines deliver responses from inside the batch,
        // before the worker flushes its counters — poll the live snapshot
        // until the accounting lands (bounded).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.engine_stats().requests < 5 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let live = engine.engine_stats();
        assert_eq!(live.engine, kind);
        assert_eq!(live.requests, 5, "{kind}: 5 well-formed requests");
        assert_eq!(live.windows, 20, "{kind}: 4 × 5 windows");
        let final_stats = engine.shutdown();
        assert_eq!(final_stats.requests, 5, "{kind}");
        assert_eq!(final_stats.windows, 20, "{kind}");
        assert!(final_stats.latency.micro_batches > 0, "{kind}");
        assert!(final_stats.throughput() > 0.0, "{kind}");
    }
}

/// Engine-generic helper code (the pattern the streaming layer uses): a
/// plain function over `&dyn Engine` behaves identically regardless of the
/// topology behind it.
#[test]
fn generic_caller_is_topology_agnostic() {
    fn serve_all(engine: &dyn Engine, batches: &[Tensor]) -> Vec<usize> {
        let pending: Vec<_> = batches
            .iter()
            .map(|b| engine.submit(b.clone()).unwrap())
            .collect();
        pending
            .into_iter()
            .flat_map(|p| p.wait().unwrap().predictions)
            .collect()
    }

    let model = Arc::new(small_bioformer(82));
    let batches: Vec<Tensor> = (0..3).map(|i| windows(2, 100 + i)).collect();
    let mut all: Vec<Vec<usize>> = Vec::new();
    for engine in engines(&model) {
        all.push(serve_all(engine.as_ref(), &batches));
        let stats = engine.shutdown();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.windows, 6);
    }
    assert_eq!(all[0], all[1], "async differs from inference");
    assert_eq!(all[0], all[2], "sharded differs from inference");
}

/// `serve_checked` answers with the same logits the `Engine` path
/// produces (the direct entry point and the trait share one batching
/// pipeline).
#[test]
fn serve_checked_matches_engine_path() {
    let model = Arc::new(small_bioformer(83));
    let engine = InferenceEngine::new(Box::new(Arc::clone(&model))).with_micro_batch(4);
    let w = windows(3, 9);
    let via_trait = Engine::classify(&engine, w.clone()).unwrap();
    let via_direct = engine.serve_checked(&w).unwrap();
    assert_eq!(via_direct.logits.data(), via_trait.logits.data());
    assert_eq!(via_direct.predictions, via_trait.predictions);
    assert_eq!(engine.stats().requests, 2);
}
