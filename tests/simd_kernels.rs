//! Property-based parity between the SIMD microkernel tiers and their
//! portable oracles.
//!
//! Two layers of guarantee, both randomized over ragged shapes (`m`, `k`,
//! `n` including 0, 1 and non-multiples of the tile):
//!
//! * **Tile level** — every selectable tier ([`Tier::Avx2`], [`Tier::Vnni`]
//!   for int8; FMA/AVX-512 for fp32) is compared against the portable tier
//!   obtained from the same dispatch table via `select(Some(Tier))`, all in
//!   one process. int8 must be **bit-exact** (the kernels are integer
//!   arithmetic with a mathematically exact lowering); fp32 within `1e-4`
//!   relative (FMA skips the product rounding, so the last bits differ).
//! * **GEMM level** — the public `qgemm_*` entry points (which run through
//!   whatever tier the runtime dispatcher picked on this host) are compared
//!   bit-exactly against naive widened-i32 references, covering both
//!   zero-point paths and the fused-requantize stores.
//!
//! On a host without AVX2 the `select` calls clamp to portable and the tile
//! tests degenerate to portable-vs-portable — trivially green, by design:
//! the CI `portable-fallback` job pins `BIOFORMER_SIMD=portable` to run the
//! GEMM-level tests against the scalar tier explicitly.

use bioformers::quant::kernels::{qgemm_i32, qgemm_i32_zp, qgemm_requant_into, requantize_vec};
use bioformers::quant::requant::FixedMultiplier;
use bioformers::simd::{select, Tier, MR, NR, QNR};
use bioformers::tensor::pack::{matmul_packed_into, Epilogue};
use bioformers::tensor::Tensor;
use proptest::prelude::*;

/// Naive widened reference: `C[i,j] = Σ_k (A[i,k]−za)(B[j,k]−zb) + bias`.
#[allow(clippy::too_many_arguments)]
fn qgemm_reference(
    a: &[i8],
    za: i32,
    b: &[i8],
    zb: i32,
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += (a[i * k + p] as i32 - za) * (b[j * k + p] as i32 - zb);
            }
            out[i * n + j] = acc + bias.map_or(0, |bias| bias[j]);
        }
    }
    out
}

/// The vendored proptest shim has no i8 strategy; draw i32 and narrow.
fn codes(len: usize) -> impl Strategy<Value = Vec<i32>> {
    proptest::collection::vec(-128i32..128, len..len + 1)
}

fn narrow(v: &[i32]) -> Vec<i8> {
    v.iter().map(|&x| x as i8).collect()
}

fn floats(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.0f32..1.0, len..len + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every int8 tier computes bit-identical dot tiles, and leaves the
    /// lanes beyond `jw` untouched.
    #[test]
    fn int8_tiers_are_bit_exact(
        k in 0usize..130,
        jw in 1usize..(QNR + 1),
        a in codes(130),
        b in codes(4 * 130),
    ) {
        let a = narrow(&a[..k]);
        let b = narrow(&b[..jw * k]);
        let (a, b) = (a.as_slice(), b.as_slice());

        let portable = select(Some(Tier::Portable));
        prop_assert!(portable.portable);
        let mut want = [i32::MIN; QNR];
        (portable.qdot_tile)(a, b, k, jw, &mut want);

        for tier in [Tier::Avx2, Tier::Vnni] {
            let kernels = select(Some(tier));
            let mut got = [i32::MIN; QNR];
            (kernels.qdot_tile)(a, b, k, jw, &mut got);
            prop_assert_eq!(
                &got[..jw], &want[..jw],
                "tier {} disagrees with portable (k={}, jw={})",
                kernels.name, k, jw
            );
            for (lane, &g) in got.iter().enumerate().skip(jw) {
                prop_assert_eq!(g, i32::MIN, "lane {} clobbered", lane);
            }
        }
    }

    /// Every fp32 tier matches the portable tile within 1e-4 relative, and
    /// leaves accumulator rows beyond `mr` untouched.
    #[test]
    fn fp32_tiers_are_close(
        k in 0usize..70,
        mr in 1usize..(MR + 1),
        a in floats(4 * 70),
        panel in floats(70 * NR),
    ) {
        let a = &a[..mr * k];
        let panel = &panel[..k * NR];

        let portable = select(Some(Tier::Portable));
        let mut want = [[0.0f32; NR]; MR];
        (portable.fp32_tile)(a, k, panel, mr, &mut want);

        for tier in [Tier::Avx2, Tier::Vnni] {
            let kernels = select(Some(tier));
            let mut got = [[f32::NAN; NR]; MR];
            (kernels.fp32_tile)(a, k, panel, mr, &mut got);
            for i in 0..mr {
                for j in 0..NR {
                    let (g, w) = (got[i][j], want[i][j]);
                    prop_assert!(
                        (g - w).abs() <= 1e-4 * (1.0 + w.abs()),
                        "tier {} acc[{}][{}]: {} vs {} (k={}, mr={})",
                        kernels.name, i, j, g, w, k, mr
                    );
                }
            }
            for row in got.iter().skip(mr) {
                prop_assert!(row.iter().all(|v| v.is_nan()), "dead row written");
            }
        }
    }

    /// The dispatched int8 GEMM is bit-exact against the naive widened
    /// reference across ragged shapes, with and without bias.
    #[test]
    fn qgemm_matches_scalar_oracle(
        m in 0usize..7,
        k in 0usize..60,
        n in 0usize..14,
        with_bias in 0usize..2,
        a in codes(7 * 60),
        b in codes(14 * 60),
        bias in proptest::collection::vec(-1000i32..1000, 14..15),
    ) {
        let a = narrow(&a[..m * k]);
        let b = narrow(&b[..n * k]);
        let (a, b) = (a.as_slice(), b.as_slice());
        let bias = (with_bias == 1).then_some(&bias[..n]);
        let want = qgemm_reference(a, 0, b, 0, bias, m, k, n);
        let got = qgemm_i32(a, b, bias, m, k, n);
        prop_assert_eq!(got, want);
    }

    /// The zero-point-corrected path is bit-exact against the widened
    /// reference for arbitrary (asymmetric) zero points.
    #[test]
    fn qgemm_zp_matches_widened_reference(
        m in 0usize..6,
        k in 0usize..40,
        n in 0usize..10,
        za in -128i32..128,
        zb in -128i32..128,
        a in codes(6 * 40),
        b in codes(10 * 40),
    ) {
        let a = narrow(&a[..m * k]);
        let b = narrow(&b[..n * k]);
        let (a, b) = (a.as_slice(), b.as_slice());
        let want = qgemm_reference(a, za, b, zb, None, m, k, n);
        let got = qgemm_i32_zp(a, za, b, zb, None, m, k, n);
        prop_assert_eq!(got, want);
    }

    /// The fused requantizing store is bit-identical to accumulate-then-
    /// requantize, for arbitrary multipliers and zero points.
    #[test]
    fn fused_requant_matches_two_pass(
        m in 1usize..5,
        k in 0usize..40,
        n in 1usize..10,
        mult in 1e-4f64..4.0,
        zp in -20i32..20,
        a in codes(5 * 40),
        b in codes(10 * 40),
    ) {
        let a = narrow(&a[..m * k]);
        let b = narrow(&b[..n * k]);
        let (a, b) = (a.as_slice(), b.as_slice());
        let mult = FixedMultiplier::encode(mult);
        let want = requantize_vec(&qgemm_i32(a, b, None, m, k, n), mult, zp);
        let mut got = vec![0i8; m * n];
        qgemm_requant_into(a, b, None, m, k, n, mult, zp, &mut got);
        prop_assert_eq!(got, want);
    }

    /// The packed fp32 GEMM (through the dispatched tile) tracks a naive
    /// f64-accumulated reference across ragged shapes.
    #[test]
    fn packed_matmul_matches_naive(
        m in 1usize..6,
        k in 0usize..40,
        n in 1usize..20,
        a in floats(6 * 40),
        b in floats(40 * 20),
    ) {
        let at = Tensor::from_vec(a[..m * k].to_vec(), &[m, k]);
        let bt = Tensor::from_vec(b[..k * n].to_vec(), &[k, n]);
        let mut out = vec![f32::NAN; m * n];
        let mut scratch = Vec::new();
        matmul_packed_into(&at, &bt, &mut scratch, &mut out, Epilogue::None);
        for i in 0..m {
            for j in 0..n {
                let want: f64 = (0..k)
                    .map(|p| at.data()[i * k + p] as f64 * bt.data()[p * n + j] as f64)
                    .sum();
                let got = out[i * n + j] as f64;
                prop_assert!(
                    (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                    "C[{}][{}]: {} vs {}", i, j, got, want
                );
            }
        }
    }
}
