//! Property tests pinning the packed/blocked inference kernels against
//! naive references, and the arena-threaded forwards against the plain
//! ones.
//!
//! The perf rework rebuilt the fp32 GEMM (panel packing + register tiling +
//! fused epilogues), the int8 GEMM (tiled accumulators + fused requantize)
//! and every `forward_infer` path (arena scratch). These tests are the
//! contract that none of it changed the numbers:
//!
//! * packed fp32 == naive triple loop within 1e-4 over random shapes,
//!   including 0/1/non-tile-multiple dims;
//! * blocked int8 == naive triple loop **bit-for-bit** (integer arithmetic
//!   is associative);
//! * arena forwards == plain forwards bit-for-bit, including across arena
//!   reuse (no buffer contamination between calls).

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::InferForward;
use bioformers::quant::kernels::{qgemm_i32, qgemm_i32_zp, qgemm_requant_into, requantize_vec};
use bioformers::quant::requant::FixedMultiplier;
use bioformers::tensor::matmul::{matmul, matmul_naive, matmul_nt, matmul_nt_naive, matvec};
use bioformers::tensor::{Tensor, TensorArena};
use proptest::prelude::*;

fn filled(dims: &[usize], seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    Tensor::from_fn(dims, |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

fn qfilled(len: usize, seed: u64) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as i8
        })
        .collect()
}

/// Reference int8 GEMM: the plain triple loop the blocked kernel replaced.
fn qgemm_reference(
    a: &[i8],
    b: &[i8],
    bias: Option<&[i32]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = bias.map_or(0, |bias| bias[j]);
            for kk in 0..k {
                acc += a[i * k + kk] as i32 * b[j * k + kk] as i32;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packed fp32 `A·B` tracks the naive kernel within 1e-4 over random
    /// shapes, including empty and sub-tile dims (the tile size is 4×16,
    /// so 0, 1 and 17-ish dims exercise every remainder path).
    #[test]
    fn packed_matmul_matches_naive(m in 0usize..40, k in 0usize..70, n in 0usize..40, seed in 0u64..1000) {
        let a = filled(&[m, k], seed);
        let b = filled(&[k, n], seed.wrapping_add(1));
        let packed = matmul(&a, &b);
        let naive = matmul_naive(&a, &b);
        prop_assert!(packed.allclose(&naive, 1e-4), "({m},{k},{n}) diverges");
    }

    /// Packed fp32 `A·Bᵀ` (the linear-layer layout) tracks its naive
    /// reference within 1e-4.
    #[test]
    fn packed_matmul_nt_matches_naive(m in 0usize..40, k in 0usize..70, n in 0usize..40, seed in 0u64..1000) {
        let a = filled(&[m, k], seed);
        let bt = filled(&[n, k], seed.wrapping_add(2));
        let packed = matmul_nt(&a, &bt);
        let naive = matmul_nt_naive(&a, &bt);
        prop_assert!(packed.allclose(&naive, 1e-4), "({m},{k},{n}) diverges");
    }

    /// `matvec` agrees with `matmul` against a column vector (the
    /// satellite fix: it now shares the unrolled dot kernel).
    #[test]
    fn matvec_matches_matmul_column(m in 1usize..40, k in 1usize..70, seed in 0u64..1000) {
        let a = filled(&[m, k], seed);
        let v = filled(&[k], seed.wrapping_add(3));
        let mv = matvec(&a, &v);
        let mm = matmul(&a, &v.reshape(&[k, 1]));
        for i in 0..m {
            prop_assert!((mv.data()[i] - mm.data()[i]).abs() < 1e-4, "row {i}");
        }
    }

    /// Blocked int8 GEMM is bit-for-bit the naive triple loop, bias
    /// included, over random shapes with 0/1/non-tile-multiple dims.
    #[test]
    fn blocked_int8_gemm_is_bit_exact(m in 0usize..24, k in 0usize..48, n in 0usize..24, seed in 0u64..1000) {
        let a = qfilled(m * k, seed);
        let b = qfilled(n * k, seed.wrapping_add(4));
        let bias: Vec<i32> = (0..n as i32).map(|j| j * 31 - 64).collect();
        prop_assert_eq!(
            qgemm_i32(&a, &b, Some(&bias), m, k, n),
            qgemm_reference(&a, &b, Some(&bias), m, k, n)
        );
    }

    /// Fused requantize-at-store is bit-for-bit accumulate-then-requantize
    /// for arbitrary multipliers and zero points.
    #[test]
    fn fused_requant_is_bit_exact(
        m in 1usize..16, k in 1usize..48, n in 1usize..24,
        mult in 1e-4f64..0.5, zp in -20i32..20, seed in 0u64..1000,
    ) {
        let a = qfilled(m * k, seed);
        let b = qfilled(n * k, seed.wrapping_add(5));
        let fm = FixedMultiplier::encode(mult);
        let two_pass = requantize_vec(&qgemm_i32(&a, &b, None, m, k, n), fm, zp);
        let mut fused = vec![0i8; m * n];
        qgemm_requant_into(&a, &b, None, m, k, n, fm, zp, &mut fused);
        prop_assert_eq!(fused, two_pass);
    }

    /// The zero-point correction-sum expansion equals offsetting every
    /// operand in the inner loop.
    #[test]
    fn zero_point_sums_are_exact(
        m in 1usize..12, k in 1usize..32, n in 1usize..12,
        za in -128i32..128, zb in -128i32..128, seed in 0u64..1000,
    ) {
        let a = qfilled(m * k, seed);
        let b = qfilled(n * k, seed.wrapping_add(6));
        let got = qgemm_i32_zp(&a, za, &b, zb, None, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0i64;
                for kk in 0..k {
                    want += (a[i * k + kk] as i64 - za as i64) * (b[j * k + kk] as i64 - zb as i64);
                }
                prop_assert_eq!(got[i * n + j] as i64, want, "({},{})", i, j);
            }
        }
    }
}

fn tiny_cfg() -> BioformerConfig {
    BioformerConfig {
        channels: 3,
        window: 20,
        classes: 4,
        embed: 8,
        filter: 5,
        heads: 2,
        depth: 2,
        head_dim: 4,
        hidden: 16,
        dropout: 0.0,
        seed: 21,
    }
}

/// The arena must be invisible in the numbers: logits with and without it
/// are identical, for a fresh arena and for a reused (warmed, possibly
/// dirty) one.
#[test]
fn arena_forward_logits_are_identical() {
    let model = Bioformer::new(&tiny_cfg());
    let mut arena = TensorArena::new();
    for trial in 0..4 {
        let x = filled(&[1 + trial % 3, 3, 20], 100 + trial as u64);
        let plain = model.forward_infer(&x);
        let arena_out = model.forward_infer_in(&x, &mut arena);
        assert!(
            arena_out.allclose(&plain, 0.0),
            "trial {trial}: arena logits diverge from plain forward_infer"
        );
        arena.recycle(arena_out);
    }
}

/// After a warm-up pass the arena pool serves every intermediate: repeated
/// forwards of the same shape hit the pool only (`misses == 0`), which is
/// the arena-level statement of "steady-state forwards do not allocate"
/// (the allocator-level proof lives in `tests/arena_alloc.rs`).
#[test]
fn warmed_arena_serves_all_intermediates_from_pool() {
    let model = Bioformer::new(&tiny_cfg());
    let x = filled(&[2, 3, 20], 7);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    arena.reset_stats();
    for _ in 0..5 {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    let stats = arena.stats();
    assert_eq!(stats.misses, 0, "steady-state forward allocated: {stats:?}");
    assert!(stats.hits > 0, "arena was never used");
}
