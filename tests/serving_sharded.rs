//! End-to-end tests of the sharded multi-replica serving engine: a
//! heterogeneous fp32+int8 pool under concurrent clients with per-replica
//! stats rolling up to pool totals, latency-aware routing steering traffic
//! away from a slow replica, quarantine of a panicking replica with
//! transparent re-routing, and draining shutdown across the pool.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{CHANNELS, WINDOW};
use bioformers::serve::{
    AsyncEngineConfig, GestureClassifier, HedgeConfig, RoutingPolicy, ServeError, ShardedEngine,
};
use bioformers::tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

fn one_window(seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[1, CHANNELS, WINDOW], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// The heterogeneous deployment the paper's Pareto front describes: one
/// fp32 Bioformer replica plus the same network quantized to int8, behind
/// one sharded pool. Concurrent clients are all served, and every pool
/// total equals the sum of its per-replica counters.
#[test]
fn heterogeneous_fp32_int8_pool_serves_with_stats_summing_to_totals() {
    let mut model = small_bioformer(51);
    let calib = Tensor::from_fn(&[8, CHANNELS, WINDOW], |i| ((i % 17) as f32 - 8.0) / 8.0);
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("int8 conversion");

    let pool = Arc::new(
        ShardedEngine::builder()
            .with_policy(RoutingPolicy::RoundRobin)
            .add_replica(Box::new(model))
            .add_replica(Box::new(qmodel))
            .build(),
    );
    assert_eq!(pool.num_replicas(), 2);
    assert_eq!(pool.num_classes(), 8);

    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 5;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                for r in 0..PER_CLIENT {
                    let out = pool.classify(one_window((c * 31 + r) as u64)).unwrap();
                    assert_eq!(out.logits.dims(), &[1, 8]);
                    assert_eq!(out.predictions.len(), 1);
                }
            });
        }
    });

    let stats = Arc::into_inner(pool).unwrap().shutdown();
    assert_eq!(stats.requests, CLIENTS * PER_CLIENT);
    assert_eq!(stats.windows, CLIENTS * PER_CLIENT);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.per_replica.len(), 2);
    assert_eq!(stats.per_replica[0].backend, "bioformer-fp32");
    assert_eq!(stats.per_replica[1].backend, "bioformer-int8");

    // Round-robin over two healthy replicas: both must have taken traffic.
    for rs in &stats.per_replica {
        assert!(
            rs.stats.requests > 0,
            "replica {} ({}) served nothing",
            rs.replica,
            rs.backend
        );
        assert!(!rs.quarantined);
    }
    // Every pool total is the sum of its per-replica counters.
    let sum = |f: fn(&bioformers::serve::AsyncStats) -> usize| -> usize {
        stats.per_replica.iter().map(|r| f(&r.stats)).sum()
    };
    assert_eq!(stats.requests, sum(|s| s.requests));
    assert_eq!(stats.windows, sum(|s| s.windows));
    assert_eq!(stats.batches, sum(|s| s.batches));
    assert_eq!(stats.coalesced_batches, sum(|s| s.coalesced_batches));
    assert_eq!(stats.expired, sum(|s| s.expired));
    assert_eq!(stats.failed, sum(|s| s.failed));
    assert_eq!(
        stats.latency.micro_batches,
        sum(|s| s.latency.micro_batches)
    );
}

/// A backend with a controllable per-batch delay, counting its calls.
struct Delayed {
    delay: Duration,
    calls: Arc<AtomicUsize>,
}

impl GestureClassifier for Delayed {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        self.calls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        Tensor::from_fn(&[windows.dims()[0], 4], |i| (i % 4) as f32)
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "delayed"
    }
}

/// LatencyAware routing must shift traffic away from an artificially
/// slowed replica once it has observed both replicas' batch latencies.
#[test]
fn latency_aware_routing_shifts_traffic_off_the_slow_replica() {
    let slow_calls = Arc::new(AtomicUsize::new(0));
    let fast_calls = Arc::new(AtomicUsize::new(0));
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::LatencyAware)
        .add_replica(Box::new(Delayed {
            delay: Duration::from_millis(25),
            calls: Arc::clone(&slow_calls),
        }))
        .add_replica(Box::new(Delayed {
            delay: Duration::from_micros(200),
            calls: Arc::clone(&fast_calls),
        }))
        .build();

    const REQUESTS: usize = 30;
    for r in 0..REQUESTS {
        let out = pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[1, 4]);
        let _ = r;
    }
    let stats = pool.shutdown();
    assert_eq!(stats.requests, REQUESTS);

    let slow = slow_calls.load(Ordering::Relaxed);
    let fast = fast_calls.load(Ordering::Relaxed);
    // Each replica is probed while it has no latency history (score 0);
    // after that, every closed-loop request must prefer the fast replica
    // (25 ms vs 0.2 ms EWMA, empty queues).
    assert!(
        slow <= 3,
        "slow replica kept receiving traffic: {slow} batches (fast {fast})"
    );
    assert!(
        fast >= REQUESTS - 3,
        "fast replica should absorb nearly all traffic: {fast} batches"
    );
}

/// A backend that panics on every batch.
struct Exploding;

impl GestureClassifier for Exploding {
    fn predict_batch(&self, _windows: &Tensor) -> Tensor {
        panic!("backend contract violation");
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "exploding"
    }
}

/// A replica whose backend panics is quarantined after the configured
/// number of consecutive failures; its cancelled requests are re-routed by
/// `classify`, and the surviving replicas keep serving everything.
#[test]
fn panicking_replica_is_quarantined_and_traffic_rerouted() {
    let good_calls = Arc::new(AtomicUsize::new(0));
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::RoundRobin)
        .with_quarantine_after(1)
        .add_replica(Box::new(Exploding))
        .add_replica(Box::new(Delayed {
            delay: Duration::ZERO,
            calls: Arc::clone(&good_calls),
        }))
        .build();

    const REQUESTS: usize = 10;
    for _ in 0..REQUESTS {
        // Every request must succeed: a Cancelled response from the
        // exploding replica is transparently re-routed to the healthy one.
        let out = pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[1, 4]);
    }

    let stats = pool.shutdown();
    assert_eq!(stats.requests, REQUESTS, "all requests served");
    assert!(
        stats.failed >= 1,
        "the exploding replica failed at least once"
    );
    assert!(
        stats.per_replica[0].quarantined,
        "exploding replica quarantined"
    );
    assert!(!stats.per_replica[1].quarantined);
    assert_eq!(stats.per_replica[1].stats.requests, REQUESTS);
    assert_eq!(good_calls.load(Ordering::Relaxed), REQUESTS);
}

/// A backend that panics for its first `failures` batches, then serves.
struct FlakyThenHealthy {
    failures_left: AtomicUsize,
    served: Arc<AtomicUsize>,
}

impl GestureClassifier for FlakyThenHealthy {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        if self
            .failures_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
        {
            panic!("transient fault");
        }
        self.served.fetch_add(1, Ordering::Relaxed);
        Tensor::zeros(&[windows.dims()[0], 4])
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "flaky-then-healthy"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((2, 5))
    }
}

/// Regression for replica auto-recovery (ROADMAP): a transiently failing
/// replica is quarantined, gets probed with canary requests, answers one
/// successfully, and **rejoins the pool** — subsequently serving client
/// traffic again. With probing disabled the quarantine stays sticky.
#[test]
fn transiently_failing_replica_rejoins_after_canary_probe() {
    let served = Arc::new(AtomicUsize::new(0));
    let good_calls = Arc::new(AtomicUsize::new(0));
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::RoundRobin)
        .with_quarantine_after(1)
        .with_probe_interval(Duration::from_millis(2))
        .add_replica(Box::new(FlakyThenHealthy {
            failures_left: AtomicUsize::new(1),
            served: Arc::clone(&served),
        }))
        .add_replica(Box::new(Delayed {
            delay: Duration::ZERO,
            calls: Arc::clone(&good_calls),
        }))
        .build();

    // Drive traffic until the flaky replica has failed once (re-routed
    // transparently) and been quarantined.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !pool.stats().per_replica[0].quarantined {
        assert!(
            std::time::Instant::now() < deadline,
            "flaky replica was never quarantined"
        );
        let out = pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[1, 4]);
    }

    // Keep traffic flowing: routing drives the canary cycle, the backend
    // is healthy now, so a canary succeeds and the replica is re-admitted.
    let mut rejoined = false;
    while std::time::Instant::now() < deadline {
        let _ = pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        let replica = &pool.stats().per_replica[0];
        // Rejoined = flag lifted AND the replica served something (the
        // canary at minimum; client traffic follows via round-robin).
        if !replica.quarantined && replica.stats.requests > 0 {
            rejoined = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(rejoined, "quarantined replica never rejoined the pool");

    // After re-admission the replica takes real client traffic again.
    let before = served.load(Ordering::Relaxed);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while served.load(Ordering::Relaxed) <= before {
        assert!(
            std::time::Instant::now() < deadline,
            "re-admitted replica got no client traffic"
        );
        let _ = pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
    }

    let stats = pool.shutdown();
    assert!(!stats.per_replica[0].quarantined, "rejoined for good");
    assert_eq!(stats.failed, 1, "exactly the one transient fault");
}

/// With probing disabled (`without_probe_recovery`) quarantine is sticky:
/// the pre-recovery behaviour is still available.
#[test]
fn disabled_probing_keeps_quarantine_sticky() {
    let served = Arc::new(AtomicUsize::new(0));
    let good_calls = Arc::new(AtomicUsize::new(0));
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::RoundRobin)
        .with_quarantine_after(1)
        .without_probe_recovery()
        .add_replica(Box::new(FlakyThenHealthy {
            failures_left: AtomicUsize::new(1),
            served: Arc::clone(&served),
        }))
        .add_replica(Box::new(Delayed {
            delay: Duration::ZERO,
            calls: Arc::clone(&good_calls),
        }))
        .build();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !pool.stats().per_replica[0].quarantined {
        assert!(std::time::Instant::now() < deadline, "never quarantined");
        pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
    }
    // Plenty of traffic later the flag still stands and the (now healthy)
    // flaky backend never serves again.
    for _ in 0..20 {
        pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
    }
    std::thread::sleep(Duration::from_millis(10));
    let stats = pool.shutdown();
    assert!(stats.per_replica[0].quarantined, "sticky quarantine");
    assert_eq!(served.load(Ordering::Relaxed), 0, "no canaries, no serves");
}

/// With every replica quarantined the pool reports `Unavailable` instead
/// of hanging or panicking.
#[test]
fn fully_quarantined_pool_reports_unavailable() {
    let pool = ShardedEngine::builder()
        .with_quarantine_after(1)
        .with_max_reroutes(2)
        .add_replica(Box::new(Exploding))
        .build();
    // First request: routed to the only replica, cancelled, re-route finds
    // no healthy replica left -> Unavailable.
    assert_eq!(
        pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
        ServeError::Unavailable
    );
    assert_eq!(
        pool.submit(Tensor::zeros(&[1, 2, 5])).unwrap_err(),
        ServeError::Unavailable
    );
    let stats = pool.shutdown();
    assert!(stats.per_replica[0].quarantined);
}

/// Shutdown closes every replica's queue up front and drains all accepted
/// requests across the pool.
#[test]
fn pool_shutdown_drains_all_replicas() {
    let model_a = small_bioformer(52);
    let model_b = small_bioformer(53);
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::LeastQueueDepth)
        .with_replica_config(
            AsyncEngineConfig::default()
                .with_workers(1)
                .with_micro_batch(4)
                .with_linger(Duration::ZERO),
        )
        .add_replica(Box::new(model_a))
        .add_replica(Box::new(model_b))
        .build();

    let pending: Vec<_> = (0..8)
        .map(|i| pool.submit(one_window(60 + i as u64)).unwrap())
        .collect();
    let stats = pool.shutdown();
    for p in pending {
        let out = p.wait().expect("drained request must be served");
        assert_eq!(out.logits.dims(), &[1, 8]);
    }
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.failed, 0);
}

/// The tentpole's hedging semantics, end to end: against a pool whose
/// round-robin primary is a deliberately slowed replica half the time, a
/// hedge fires after the (clamped) hedge delay, the fast replica's answer
/// wins the race, and the caller never waits out the slow replica's full
/// service time. The losing duplicate is cancelled — its work still counts
/// in the losing replica's own stats, so the pool rollup stays consistent
/// (no double-counting, no missing counts).
#[test]
fn hedge_fires_against_a_slow_replica_and_the_fast_answer_wins() {
    const SLOW: Duration = Duration::from_millis(150);
    let slow_calls = Arc::new(AtomicUsize::new(0));
    let fast_calls = Arc::new(AtomicUsize::new(0));
    let pool = ShardedEngine::builder()
        // Round-robin forces the slow replica to be the primary for half
        // the requests — LatencyAware would route around it and never
        // exercise the hedge.
        .with_policy(RoutingPolicy::RoundRobin)
        .with_hedging(HedgeConfig {
            initial_delay: Duration::from_millis(5),
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        })
        .add_replica(Box::new(Delayed {
            delay: SLOW,
            calls: Arc::clone(&slow_calls),
        }))
        .add_replica(Box::new(Delayed {
            delay: Duration::ZERO,
            calls: Arc::clone(&fast_calls),
        }))
        .build();

    const REQUESTS: usize = 6;
    for _ in 0..REQUESTS {
        let started = std::time::Instant::now();
        let out = pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
        assert_eq!(out.logits.dims(), &[1, 4]);
        // The hedge caps the decision latency at roughly the hedge delay
        // (≤ 20 ms) plus the fast replica's service time — never the slow
        // replica's 150 ms sleep.
        assert!(
            started.elapsed() < SLOW * 2 / 3,
            "hedging failed to cut the slow replica's tail: {:?}",
            started.elapsed()
        );
    }

    let stats = pool.shutdown();
    assert!(
        stats.hedges_fired >= REQUESTS / 2,
        "slow primaries must fire hedges: {} fired",
        stats.hedges_fired
    );
    assert!(
        stats.hedges_won >= 1,
        "at least one hedge must win against a 150 ms primary"
    );
    assert!(stats.hedges_won <= stats.hedges_fired);
    // The cancelled losers are ordinary requests in their replica's own
    // counters: pool totals still equal the per-replica sums.
    assert!(stats.rollup_consistent(), "hedging broke the stats rollup");
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.failed, 0);
    // Both replicas actually executed work (the slow one as a losing
    // primary, the fast one as the winning hedge or primary).
    assert!(slow_calls.load(Ordering::Relaxed) >= 1);
    assert!(fast_calls.load(Ordering::Relaxed) >= REQUESTS / 2);
}

/// With hedging off (the default), the hedge counters stay at zero and
/// `classify` behaves exactly as before: same answers, one request counted
/// per call, rollup intact.
#[test]
fn hedging_off_counts_nothing_and_serves_identically() {
    let model = Arc::new(small_bioformer(55));
    let pool = ShardedEngine::builder()
        .add_replica(Box::new(Arc::clone(&model)))
        .add_replica(Box::new(Arc::clone(&model)))
        .build();
    assert_eq!(pool.config().hedge, None, "hedging must default to off");

    let w = one_window(71);
    let direct = model.predict_batch(&w);
    let out = pool.classify(w).unwrap();
    assert_eq!(
        out.logits.data(),
        direct.data(),
        "unhedged classify must stay bit-identical to the direct model"
    );
    let stats = pool.shutdown();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.hedges_fired, 0);
    assert_eq!(stats.hedges_won, 0);
    assert!(stats.rollup_consistent());
}

/// Explicit replica weights steer LatencyAware routing: at equal observed
/// latency, a weight-4 replica's score is 4× cheaper, so it absorbs
/// (nearly) all closed-loop traffic once both EWMAs have converged.
#[test]
fn weighted_routing_steers_traffic_toward_the_heavy_replica() {
    const DELAY: Duration = Duration::from_millis(2);
    let heavy_calls = Arc::new(AtomicUsize::new(0));
    let light_calls = Arc::new(AtomicUsize::new(0));
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::LatencyAware)
        .add_replica_weighted(
            Box::new(Delayed {
                delay: DELAY,
                calls: Arc::clone(&heavy_calls),
            }),
            4.0,
        )
        .add_replica_weighted(
            Box::new(Delayed {
                delay: DELAY,
                calls: Arc::clone(&light_calls),
            }),
            1.0,
        )
        .build();

    const REQUESTS: usize = 20;
    for _ in 0..REQUESTS {
        pool.classify(Tensor::zeros(&[1, 2, 5])).unwrap();
    }
    let stats = pool.shutdown();
    assert_eq!(stats.per_replica[0].weight, 4.0);
    assert_eq!(stats.per_replica[1].weight, 1.0);

    let heavy = heavy_calls.load(Ordering::Relaxed);
    let light = light_calls.load(Ordering::Relaxed);
    // Each replica is probed once while it has no history (score 0); from
    // then on equal 2 ms EWMAs divided by 4 vs 1 always favour the heavy
    // replica in this closed loop (queues are empty between requests).
    assert!(
        heavy >= REQUESTS - 5,
        "weight-4 replica should dominate: heavy {heavy}, light {light}"
    );
    assert!(
        light <= 5,
        "weight-1 replica should only see probe traffic: {light}"
    );
}

/// One shared model instance can back several replicas through the
/// `Arc<T>` backend impl — replicas add workers and queues, not weights.
#[test]
fn shared_model_backs_multiple_replicas_without_cloning() {
    let model = Arc::new(small_bioformer(54));
    let pool = ShardedEngine::builder()
        .add_replica(Box::new(Arc::clone(&model)))
        .add_replica(Box::new(Arc::clone(&model)))
        .build();
    let w = one_window(70);
    let direct = model.predict_batch(&w);
    let out = pool.classify(w).unwrap();
    assert_eq!(out.logits.data(), direct.data());
    let stats = pool.shutdown();
    assert_eq!(stats.requests, 1);
}
