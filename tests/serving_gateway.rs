//! Wire-codec fuzzing and TCP gateway fault injection.
//!
//! Part 1 — the `serve::proto` codec: encode→decode identity for arbitrary
//! frames under arbitrary byte-boundary splits, and typed (never
//! panicking) rejection of truncated, oversized and garbage inputs. The
//! property blocks below run 1100 generated cases in total.
//!
//! Part 2 — the loopback `TcpGateway`: streamed results bit-match the
//! offline path; a dropped socket mid-stream parks the session and frees
//! the slot; an idle-timeout eviction surfaces as a typed error frame and
//! the resumed connection continues the stream seamlessly; protocol
//! garbage kills one connection with an explicit error frame, not the
//! server.

use bioformers::serve::proto::{
    encode_frame, ErrorCode, Frame, FrameDecoder, ProtoError, MAX_FRAME,
};
use bioformers::serve::{
    DecisionPolicy, Engine, GatewayClient, GatewayError, GestureClassifier, GestureEvent,
    InferenceEngine, StreamConfig, StreamServer, StreamServerConfig, StreamSession, StreamSummary,
    TcpGateway,
};
use bioformers::tensor::Tensor;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Part 1 — codec fuzzing
// ---------------------------------------------------------------------------

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A finite f32 derived from random bits (NaN would break `PartialEq`
/// round-trip comparison; the codec itself is bit-transparent).
fn rand_f32(state: &mut u64) -> f32 {
    ((xorshift(state) >> 40) as f32 / (1u64 << 24) as f32) * 2.0e6 - 1.0e6
}

fn rand_string(state: &mut u64, max_len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '-', '_', ' ', 'é', '名', '🖐', '\n', '"', '\\',
    ];
    let len = (xorshift(state) as usize) % (max_len + 1);
    (0..len)
        .map(|_| ALPHABET[(xorshift(state) as usize) % ALPHABET.len()])
        .collect()
}

/// Draws one arbitrary well-formed frame.
fn rand_frame(state: &mut u64) -> Frame {
    match xorshift(state) % 9 {
        0 => Frame::Hello {
            tenant: rand_string(state, 24),
            resume: xorshift(state).is_multiple_of(2).then(|| xorshift(state)),
            model: xorshift(state)
                .is_multiple_of(2)
                .then(|| rand_string(state, 16)),
        },
        1 => {
            let n = (xorshift(state) as usize) % 300;
            Frame::Samples((0..n).map(|_| rand_f32(state)).collect())
        }
        2 => Frame::Finish,
        3 => Frame::Bye,
        4 => Frame::HelloAck {
            token: xorshift(state),
            channels: xorshift(state) as u16,
            window: xorshift(state) as u32,
            slide: xorshift(state) as u32,
        },
        5 => Frame::Event(GestureEvent::Started {
            class: (xorshift(state) as usize) % 1000,
            window: xorshift(state) as usize,
            confidence: rand_f32(state),
        }),
        6 => Frame::Event(GestureEvent::Ended {
            class: (xorshift(state) as usize) % 1000,
            window: xorshift(state) as usize,
            held: xorshift(state) as usize,
        }),
        7 => {
            let n = (xorshift(state) as usize) % 40;
            Frame::Summary {
                windows: xorshift(state),
                predictions: (0..n).map(|_| (xorshift(state), rand_f32(state))).collect(),
            }
        }
        _ => Frame::Error {
            code: ErrorCode::from_u8((xorshift(state) % 7 + 1) as u8).unwrap(),
            message: rand_string(state, 60),
        },
    }
}

/// Splits `wire` into pieces at arbitrary boundaries and feeds them one by
/// one, collecting every decoded frame.
fn decode_split(wire: &[u8], state: &mut u64) -> Result<Vec<Frame>, ProtoError> {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    let mut at = 0usize;
    while at < wire.len() {
        let step = 1 + (xorshift(state) as usize) % 97;
        let end = (at + step).min(wire.len());
        dec.feed(&wire[at..end]);
        at = end;
        while let Some(frame) = dec.next_frame()? {
            got.push(frame);
        }
    }
    dec.check_eof()?;
    Ok(got)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Any sequence of arbitrary frames encodes and decodes to identity,
    /// no matter where the byte stream is split.
    #[test]
    fn codec_roundtrips_under_arbitrary_splits(seed in 1u64..u64::MAX) {
        let mut state = seed;
        let count = 1 + (xorshift(&mut state) as usize) % 8;
        let frames: Vec<Frame> = (0..count).map(|_| rand_frame(&mut state)).collect();
        let mut wire = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut wire).expect("arbitrary frames are encodable");
        }
        let decoded = decode_split(&wire, &mut state).expect("valid wire must decode");
        prop_assert_eq!(decoded, frames);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Truncating a valid stream at any byte yields the decodable prefix
    /// frames, then a typed `TruncatedStream` at EOF (or a clean EOF when
    /// the cut lands exactly on a frame boundary). Never a panic.
    #[test]
    fn truncated_streams_are_typed_errors(seed in 1u64..u64::MAX) {
        let mut state = seed;
        let count = 1 + (xorshift(&mut state) as usize) % 5;
        let mut wire = Vec::new();
        let mut boundaries = vec![0usize];
        for _ in 0..count {
            encode_frame(&rand_frame(&mut state), &mut wire).expect("encodable");
            boundaries.push(wire.len());
        }
        let cut = 1 + (xorshift(&mut state) as usize) % wire.len();
        let mut dec = FrameDecoder::new();
        dec.feed(&wire[..cut]);
        let mut decoded = 0usize;
        while let Some(_frame) = dec.next_frame().expect("prefix of valid wire") {
            decoded += 1;
        }
        // Exactly the frames fully contained in the cut prefix decode.
        let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        prop_assert_eq!(decoded, whole);
        match dec.check_eof() {
            Ok(()) => prop_assert!(boundaries.contains(&cut), "clean EOF off a frame boundary"),
            Err(ProtoError::TruncatedStream { have }) => {
                prop_assert!(have > 0 && !boundaries.contains(&cut));
            }
            Err(other) => prop_assert!(false, "unexpected EOF error {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Hostile input never panics the decoder: pure garbage, bit-flipped
    /// valid streams, and length-field lies (oversized/undersized) all
    /// surface as `Ok(None)` (starved) or a typed error that stays sticky.
    #[test]
    fn garbage_never_panics_the_decoder(seed in 1u64..u64::MAX) {
        let mut state = seed;
        let wire: Vec<u8> = match xorshift(&mut state) % 3 {
            // Pure random bytes.
            0 => {
                let n = (xorshift(&mut state) as usize) % 600;
                (0..n).map(|_| xorshift(&mut state) as u8).collect()
            }
            // A valid stream with one corrupted byte.
            1 => {
                let mut wire = Vec::new();
                for _ in 0..1 + (xorshift(&mut state) as usize) % 4 {
                    encode_frame(&rand_frame(&mut state), &mut wire).expect("encodable");
                }
                let at = (xorshift(&mut state) as usize) % wire.len();
                wire[at] ^= (1 + xorshift(&mut state) % 255) as u8;
                wire
            }
            // Correct magic, hostile length field.
            _ => {
                let mut wire = vec![0xB1, 0x05];
                let len = match xorshift(&mut state) % 3 {
                    0 => xorshift(&mut state) as u32,           // arbitrary
                    1 => (MAX_FRAME as u32) + 1 + (xorshift(&mut state) as u32 % 1000),
                    _ => xorshift(&mut state) as u32 % 2,       // undersized
                };
                wire.extend_from_slice(&len.to_le_bytes());
                let tail = (xorshift(&mut state) as usize) % 64;
                wire.extend((0..tail).map(|_| xorshift(&mut state) as u8));
                wire
            }
        };
        let mut dec = FrameDecoder::new();
        let mut at = 0usize;
        let mut first_err: Option<ProtoError> = None;
        while at < wire.len() {
            let step = 1 + (xorshift(&mut state) as usize) % 33;
            let end = (at + step).min(wire.len());
            dec.feed(&wire[at..end]);
            at = end;
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(e) => {
                        // Errors are sticky: the decoder repeats its verdict
                        // rather than resynchronizing on corrupt input.
                        match &first_err {
                            None => first_err = Some(e),
                            Some(prev) => prop_assert_eq!(prev, &e),
                        }
                        break;
                    }
                }
            }
        }
        // Reaching here without a panic IS the property; `first_err`, when
        // set, proved sticky above.
    }
}

/// Every `ErrorCode` round-trips through its wire byte.
#[test]
fn error_codes_roundtrip() {
    for code in [
        ErrorCode::BadRequest,
        ErrorCode::PoolFull,
        ErrorCode::UnknownToken,
        ErrorCode::Evicted,
        ErrorCode::Protocol,
        ErrorCode::Internal,
        ErrorCode::ShuttingDown,
    ] {
        assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
    }
    assert_eq!(ErrorCode::from_u8(0), None);
    assert_eq!(ErrorCode::from_u8(200), None);
}

// ---------------------------------------------------------------------------
// Part 2 — TCP loopback fault injection
// ---------------------------------------------------------------------------

const CHANNELS: usize = 2;
const WINDOW: usize = 8;
const CHUNK: usize = CHANNELS * WINDOW;

/// Same fast deterministic backend as `tests/serving_server.rs`.
struct MockBackend;

impl GestureClassifier for MockBackend {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        let n = windows.dims()[0];
        let len = CHANNELS * WINDOW;
        Tensor::from_fn(&[n, 4], |i| {
            let (row, class) = (i / 4, i % 4);
            let x = &windows.data()[row * len..(row + 1) * len];
            let mut score = 0.0f32;
            for (j, &v) in x.iter().enumerate() {
                score += v * (((j * (class + 2)) % 11) as f32 / 11.0 - 0.5);
            }
            score
        })
    }

    fn num_classes(&self) -> usize {
        4
    }

    fn name(&self) -> &str {
        "mock"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((CHANNELS, WINDOW))
    }
}

fn signal(windows: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..windows * CHUNK).map(|_| rand_f32(&mut state)).collect()
}

fn stream_cfg() -> StreamConfig {
    StreamConfig::new(CHANNELS, WINDOW)
        .with_lookahead(0)
        .with_policy(DecisionPolicy {
            vote_depth: 3,
            min_hold: 1,
            confidence_floor: 0.0,
        })
}

fn gateway(cfg: StreamServerConfig) -> (Arc<StreamServer>, TcpGateway) {
    let engine: Arc<dyn Engine> = Arc::new(InferenceEngine::new(Box::new(MockBackend)));
    let server = Arc::new(StreamServer::start(engine, cfg).expect("server"));
    let gw = TcpGateway::bind(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    (server, gw)
}

/// The uninterrupted in-process reference for `stream`.
fn reference(stream: &[f32]) -> StreamSummary {
    let engine: Arc<dyn Engine> = Arc::new(InferenceEngine::new(Box::new(MockBackend)));
    let mut session = StreamSession::new(engine, stream_cfg()).expect("reference session");
    let mut events = Vec::new();
    for chunk in stream.chunks(CHUNK) {
        events.extend(session.push_samples(chunk).expect("reference push"));
    }
    let mut summary = session.finish().expect("reference finish");
    events.extend(std::mem::take(&mut summary.events));
    summary.events = events;
    summary
}

fn assert_matches_reference(
    windows: u64,
    predictions: &[(u64, f32)],
    events: &[GestureEvent],
    expect: &StreamSummary,
) {
    assert_eq!(windows as usize, expect.windows);
    let classes: Vec<u64> = predictions.iter().map(|&(c, _)| c).collect();
    let confs: Vec<f32> = predictions.iter().map(|&(_, p)| p).collect();
    let expect_classes: Vec<u64> = expect.predictions.iter().map(|&c| c as u64).collect();
    assert_eq!(classes, expect_classes, "per-window predictions");
    assert_eq!(
        confs, expect.confidences,
        "per-window confidences bit-match"
    );
    assert_eq!(events, expect.events, "gesture event timeline");
}

/// Retries `f` until it succeeds or the deadline passes (the server parks
/// disconnected sessions asynchronously).
fn retry<T>(mut f: impl FnMut() -> Result<T, GatewayError>, what: &str) -> T {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match f() {
            Ok(v) => return v,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "timed out on {what}; last error: {e}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Streaming over TCP loopback produces bit-identical results to the
/// in-process offline path.
#[test]
fn tcp_roundtrip_bit_matches_offline() {
    let (_server, gw) = gateway(StreamServerConfig::new(stream_cfg()));
    let stream = signal(25, 77);
    let mut client = GatewayClient::connect(gw.local_addr(), "wearable-1").expect("connect");
    assert_eq!(client.channels(), CHANNELS);
    assert_eq!(client.window(), WINDOW);
    for chunk in stream.chunks(3 * CHUNK + 5) {
        client.send_samples(chunk).expect("send");
    }
    let summary = client.finish().expect("finish");
    assert_matches_reference(
        summary.windows,
        &summary.predictions,
        &summary.events,
        &reference(&stream),
    );
    assert_eq!(summary.stats.samples, stream.len() as u64);
}

/// Dropping the socket mid-stream parks the session server-side, frees
/// the only slot, and a resumed connection completes the stream with the
/// exact uninterrupted timeline.
#[test]
fn tcp_socket_drop_frees_slot_and_resume_completes_the_stream() {
    let (server, gw) = gateway(StreamServerConfig::new(stream_cfg()).with_max_sessions(1));
    let stream = signal(16, 555);
    let cut = 7 * CHUNK + 3;

    let mut client = GatewayClient::connect(gw.local_addr(), "patient").expect("connect");
    let token = client.token();
    let mut events: Vec<GestureEvent> = Vec::new();
    for chunk in stream[..cut].chunks(CHUNK) {
        events.extend(client.send_samples(chunk).expect("send"));
    }
    // Let the pump settle and drain stragglers, so no event is sitting in
    // the kernel socket buffer (where it would die with the connection —
    // events lost in flight to a crashed peer need an ack protocol, which
    // the wire format does not promise).
    std::thread::sleep(Duration::from_millis(200));
    events.extend(client.send_samples(&[]).expect("drain"));
    // Kill the connection without Bye/Finish — a crashed client.
    drop(client);

    // The slot frees once the gateway notices the EOF and parks the
    // session; until then the pool is full and resume is pending.
    let mut resumed = retry(
        || GatewayClient::resume(gw.local_addr(), "patient", token),
        "resume after socket drop",
    );
    assert_ne!(resumed.token(), token, "resume mints a fresh token");
    for chunk in stream[cut..].chunks(CHUNK) {
        resumed.send_samples(chunk).expect("resumed send");
    }
    let summary = resumed.finish().expect("resumed finish");
    // `events` holds what the dead connection delivered; the resumed
    // summary holds everything the second connection saw — any event
    // undelivered at the seam travels with the checkpoint and is
    // delivered exactly once.
    let mut all_events = events;
    all_events.extend(summary.events.clone());
    assert_matches_reference(
        summary.windows,
        &summary.predictions,
        &all_events,
        &reference(&stream),
    );
    assert_eq!(server.stats().totals.disconnects, 1);
    assert_eq!(server.stats().totals.reconnects, 1);
}

/// An idle connection is evicted by the server's timeout: the client gets
/// a typed `Evicted` error frame, and resuming with the token continues
/// the stream without losing or duplicating a single event.
#[test]
fn tcp_idle_eviction_surfaces_as_typed_error_and_resume_continues() {
    let (server, gw) = gateway(
        StreamServerConfig::new(stream_cfg()).with_idle_timeout(Some(Duration::from_millis(40))),
    );
    let stream = signal(18, 4242);
    let cut = 8 * CHUNK + 6;

    let mut client = GatewayClient::connect(gw.local_addr(), "idle-wearable").expect("connect");
    let token = client.token();
    for chunk in stream[..cut].chunks(CHUNK) {
        client.send_samples(chunk).expect("send");
    }

    // Go silent until the eviction fires and reaches us as an error frame.
    // Each probe sleeps past the idle timeout first (a probe itself counts
    // as activity), and drains whatever the server pushed — so straggler
    // events land in the client's log before the eviction error does.
    // The connection may already be torn down by the time we probe: the
    // I/O error surface proves the eviction just as well.
    let deadline = Instant::now() + Duration::from_secs(10);
    let events: Vec<GestureEvent> = loop {
        std::thread::sleep(Duration::from_millis(60));
        match client.send_samples(&[]) {
            Ok(_) => assert!(Instant::now() < deadline, "eviction never fired"),
            Err(GatewayError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::Evicted, "typed eviction error frame");
                break client.events().to_vec();
            }
            Err(GatewayError::Io(_)) => break client.events().to_vec(),
            Err(other) => panic!("unexpected error while idle: {other}"),
        }
    };
    assert!(server.stats().totals.evictions >= 1);

    let mut resumed = retry(
        || GatewayClient::resume(gw.local_addr(), "idle-wearable", token),
        "resume after eviction",
    );
    for chunk in stream[cut..].chunks(CHUNK) {
        resumed.send_samples(chunk).expect("resumed send");
    }
    let summary = resumed.finish().expect("resumed finish");
    let mut all_events = events;
    all_events.extend(summary.events.clone());
    assert_matches_reference(
        summary.windows,
        &summary.predictions,
        &all_events,
        &reference(&stream),
    );
}

/// Protocol garbage gets an explicit error frame and a closed connection —
/// and the server keeps serving everyone else.
#[test]
fn tcp_garbage_gets_error_frame_and_server_survives() {
    let (_server, gw) = gateway(StreamServerConfig::new(stream_cfg()));

    // A peer speaking HTTP at the gateway.
    let mut raw = std::net::TcpStream::connect(gw.local_addr()).expect("raw connect");
    raw.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write garbage");
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 1024];
    let frame = loop {
        match raw.read(&mut buf) {
            Ok(0) => panic!("connection closed without an error frame"),
            Ok(n) => {
                dec.feed(&buf[..n]);
                if let Some(frame) = dec.next_frame().expect("server speaks valid protocol") {
                    break frame;
                }
            }
            Err(e) => panic!("read failed before error frame: {e}"),
        }
    };
    match frame {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected a Protocol error frame, got {other:?}"),
    }
    // The server closed the connection after the error frame.
    let n = raw.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "connection stays closed after a protocol error");
    drop(raw);

    // A lying resume token gets its own typed rejection.
    let err = GatewayClient::resume(gw.local_addr(), "nobody", 0xDEAD_BEEF).unwrap_err();
    match err {
        GatewayError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownToken),
        other => panic!("expected UnknownToken, got {other}"),
    }

    // And an honest client is entirely unaffected.
    let stream = signal(6, 99);
    let mut client = GatewayClient::connect(gw.local_addr(), "honest").expect("connect");
    for chunk in stream.chunks(CHUNK) {
        client.send_samples(chunk).expect("send");
    }
    let summary = client.finish().expect("finish");
    assert_matches_reference(
        summary.windows,
        &summary.predictions,
        &summary.events,
        &reference(&stream),
    );
}

/// `Bye` detaches with state kept server-side: a second connection resumes
/// and the combined timeline equals the uninterrupted run.
#[test]
fn tcp_bye_then_resume_round_trips() {
    let (_server, gw) = gateway(StreamServerConfig::new(stream_cfg()));
    let stream = signal(14, 31337);
    let cut = 6 * CHUNK;

    let mut client = GatewayClient::connect(gw.local_addr(), "commuter").expect("connect");
    for chunk in stream[..cut].chunks(CHUNK) {
        client.send_samples(chunk).expect("send");
    }
    // Settle and drain before detaching, so nothing is in flight on the
    // socket when it closes.
    std::thread::sleep(Duration::from_millis(200));
    client.send_samples(&[]).expect("drain");
    // `bye` returns every event this connection delivered.
    let (token, events) = client.bye().expect("bye");

    let mut resumed = retry(
        || GatewayClient::resume(gw.local_addr(), "commuter", token),
        "resume after bye",
    );
    for chunk in stream[cut..].chunks(CHUNK) {
        resumed.send_samples(chunk).expect("resumed send");
    }
    let summary = resumed.finish().expect("finish");
    let mut all_events = events;
    all_events.extend(summary.events.clone());
    assert_matches_reference(
        summary.windows,
        &summary.predictions,
        &all_events,
        &reference(&stream),
    );
}
