//! Stream/offline equivalence for the `StreamSession` layer.
//!
//! The guarantee under test: feeding a signal through `StreamSession` —
//! in arbitrary chunk sizes, through any `Engine`, at fp32 or int8 —
//! yields **bit-identical** per-window predictions to the offline batch
//! path (`extract_all_into` → normalize → one `predict_batch`), and the
//! decision events are the deterministic image of those predictions.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::windowing::extract_all_into;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::stream::confidence;
use bioformers::serve::{
    AsyncEngine, AsyncEngineConfig, DecisionPolicy, DecisionSmoother, Engine, GestureClassifier,
    InferenceEngine, ShardedEngine, StreamConfig, StreamSession,
};
use bioformers::tensor::Tensor;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn tiny_config(seed: u64) -> BioformerConfig {
    BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    }
}

/// The fp32 model and its int8 conversion, as shareable backends.
fn backends(seed: u64) -> (Arc<Bioformer>, Arc<QuantBioformer>) {
    let cfg = tiny_config(seed);
    let mut model = Bioformer::new(&cfg);
    let calib = signal_tensor(4 * WINDOW, 5);
    let calib = {
        // Reuse the signal generator as calibration windows.
        let mut buf = Vec::new();
        let n = extract_all_into(&calib, WINDOW, &mut buf);
        Tensor::from_vec(buf, &[n, CHANNELS, WINDOW])
    };
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(&cfg, &dict, &calib).expect("int8 conversion");
    (Arc::new(model), Arc::new(qmodel))
}

/// Deterministic pseudo-random `[CHANNELS, len]` recording.
fn signal_tensor(len: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[CHANNELS, len], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// Interleaves a channel-major recording into the frame stream an ADC
/// delivers (`[c0 c1 … c13]` per time step).
fn interleave(signal: &Tensor) -> Vec<f32> {
    let (c, len) = (signal.dims()[0], signal.dims()[1]);
    let mut out = Vec::with_capacity(c * len);
    for t in 0..len {
        for ch in 0..c {
            out.push(signal.data()[ch * len + t]);
        }
    }
    out
}

/// A normalizer with non-trivial per-channel statistics.
fn test_normalizer() -> Normalizer {
    let mean: Vec<f32> = (0..CHANNELS).map(|c| 0.01 * c as f32 - 0.05).collect();
    let std: Vec<f32> = (0..CHANNELS).map(|c| 0.8 + 0.05 * c as f32).collect();
    Normalizer::from_stats(mean, std)
}

/// The offline batch path: extract every window, normalize each with the
/// dataset-path arithmetic, run one `predict_batch`, take argmaxes and
/// top-class confidences.
fn offline_path(
    backend: &dyn GestureClassifier,
    signal: &Tensor,
    slide: usize,
    norm: &Normalizer,
) -> (Vec<usize>, Vec<f32>) {
    let mut buf = Vec::new();
    let n = extract_all_into(signal, slide, &mut buf);
    for w in buf.chunks_mut(CHANNELS * WINDOW) {
        norm.apply_window(w);
    }
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let x = Tensor::from_vec(buf, &[n, CHANNELS, WINDOW]);
    let logits = backend.predict_batch(&x);
    let preds = logits.argmax_rows();
    let confs = preds
        .iter()
        .enumerate()
        .map(|(i, &p)| confidence(logits.row(i), p))
        .collect();
    (preds, confs)
}

/// Streams `signal` through a session over `engine` in `chunk`-sample
/// pushes and returns the summary (predictions, confidences, events).
fn stream_path(
    engine: Arc<dyn Engine>,
    signal: &Tensor,
    slide: usize,
    chunk: usize,
    lookahead: usize,
    policy: DecisionPolicy,
) -> bioformers::serve::StreamSummary {
    let cfg = StreamConfig::db6()
        .with_slide(slide)
        .with_lookahead(lookahead)
        .with_policy(policy)
        .with_normalizer(test_normalizer());
    let mut session = StreamSession::new(engine, cfg).expect("valid stream config");
    let stream = interleave(signal);
    let mut events = Vec::new();
    for part in stream.chunks(chunk.max(1)) {
        events.extend(session.push_samples(part).expect("stream push"));
    }
    let mut summary = session.finish().expect("stream finish");
    // Merge incremental and finish-time events into one timeline.
    events.extend(std::mem::take(&mut summary.events));
    summary.events = events;
    summary
}

/// Replays recorded predictions through the same decision logic offline.
fn offline_events(
    preds: &[usize],
    confs: &[f32],
    policy: DecisionPolicy,
) -> Vec<bioformers::serve::GestureEvent> {
    let mut smoother = DecisionSmoother::new(policy).unwrap();
    let mut events = Vec::new();
    for (&p, &c) in preds.iter().zip(confs) {
        smoother.push(p, c, &mut events);
    }
    smoother.flush(&mut events);
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The satellite property test: random signal, arbitrary chunk sizes
    /// (1 sample … the whole signal), random lookahead — streamed window
    /// predictions bit-match offline `extract_all_into` + `predict_batch`
    /// for both precisions, and the events match the offline smoothing of
    /// those predictions.
    #[test]
    fn streamed_predictions_bit_match_offline_for_any_chunking(
        extra in 0usize..600,
        chunk in prop::sample::select(vec![1usize, 13, CHANNELS, 97, 1400, usize::MAX / 2]),
        lookahead in 0usize..4,
        seed in 1u64..100,
    ) {
        let slide = 150;
        let signal = signal_tensor(WINDOW + extra, seed);
        let policy = DecisionPolicy { vote_depth: 3, min_hold: 1, confidence_floor: 0.0 };
        let (fp32, int8) = backends(31);
        let backends: [Arc<dyn GestureClassifier>; 2] = [fp32, int8];
        for backend in backends {
            let (preds, confs) = offline_path(backend.as_ref(), &signal, slide, &test_normalizer());
            let engine: Arc<dyn Engine> =
                Arc::new(InferenceEngine::new(Box::new(Arc::clone(&backend))));
            let summary = stream_path(engine, &signal, slide, chunk, lookahead, policy.clone());
            prop_assert_eq!(&summary.predictions, &preds, "{} predictions", backend.name());
            prop_assert_eq!(&summary.confidences, &confs, "{} confidences", backend.name());
            prop_assert_eq!(
                summary.events,
                offline_events(&preds, &confs, policy.clone()),
                "{} events",
                backend.name()
            );
        }
    }
}

/// The acceptance-criterion test: a streamed Ninapro DB6 session —
/// continuous signal, odd chunk sizes that split frames across pushes —
/// bit-matches the offline windowed `predict_batch` path for the fp32 and
/// the int8 backend, through both the inline and the concurrent engine.
#[test]
fn streamed_db6_session_bit_matches_offline_batch_path_fp32_and_int8() {
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let (full_signal, spans) = db.session_signal(0, 2);
    assert!(!spans.is_empty());
    // A session prefix keeps the test seconds-scale while still crossing
    // several repetition boundaries mid-stream.
    let len = (4 * db.spec().rep_samples()).min(full_signal.dims()[1]);
    let total = full_signal.dims()[1];
    let mut data = Vec::with_capacity(CHANNELS * len);
    for ch in 0..CHANNELS {
        data.extend_from_slice(&full_signal.data()[ch * total..ch * total + len]);
    }
    let signal = Tensor::from_vec(data, &[CHANNELS, len]);
    let slide = db.spec().slide;
    let policy = DecisionPolicy::default();

    let (fp32, int8) = backends(91);
    let backends: [Arc<dyn GestureClassifier>; 2] = [fp32, int8];
    for backend in backends {
        let name = backend.name().to_string();
        let (preds, confs) = offline_path(backend.as_ref(), &signal, slide, &test_normalizer());
        assert!(preds.len() > 20, "{name}: session prefix too short");
        let expected_events = offline_events(&preds, &confs, policy.clone());

        let verify = |summary: &bioformers::serve::StreamSummary,
                      stats: &bioformers::serve::EngineStats,
                      kind: &str| {
            assert_eq!(
                summary.predictions, preds,
                "{name}/{kind}: streamed predictions diverge from offline batch"
            );
            assert_eq!(
                summary.confidences, confs,
                "{name}/{kind}: streamed confidences diverge"
            );
            assert_eq!(
                summary.events, expected_events,
                "{name}/{kind}: streamed decisions diverge"
            );
            assert_eq!(stats.requests, preds.len(), "{name}/{kind}");
            assert_eq!(stats.windows, preds.len(), "{name}/{kind}");
        };

        // 997 samples per push: frames split across pushes, windows split
        // across chunks — the stream never sees clean edges.
        let inline = Arc::new(InferenceEngine::new(Box::new(Arc::clone(&backend))));
        let summary = stream_path(
            Arc::clone(&inline) as Arc<dyn Engine>,
            &signal,
            slide,
            997,
            3,
            policy.clone(),
        );
        let inline = Arc::try_unwrap(inline).unwrap_or_else(|_| panic!("engine released"));
        verify(&summary, &Engine::shutdown(Box::new(inline)), "inline");

        let pipelined = Arc::new(AsyncEngine::with_config(
            Box::new(Arc::clone(&backend)),
            AsyncEngineConfig::default()
                .with_workers(2)
                .with_micro_batch(8)
                .with_linger(Duration::from_micros(200)),
        ));
        let summary = stream_path(
            Arc::clone(&pipelined) as Arc<dyn Engine>,
            &signal,
            slide,
            997,
            3,
            policy.clone(),
        );
        let pipelined = Arc::try_unwrap(pipelined).unwrap_or_else(|_| panic!("engine released"));
        verify(&summary, &Engine::shutdown(Box::new(pipelined)), "async");
    }
}

/// A stream driven through a sharded pool of fp32 + int8 replicas of the
/// same weights still yields a coherent decision stream (in-order
/// absorption), and every window is served.
#[test]
fn stream_session_runs_over_a_sharded_pool() {
    let (fp32, _int8) = backends(71);
    // Two replicas of the same fp32 weights: routing is free to split the
    // stream, predictions must still bit-match the offline path.
    let pool = Arc::new(
        ShardedEngine::builder()
            .add_replica(Box::new(Arc::clone(&fp32)))
            .add_replica(Box::new(Arc::clone(&fp32)))
            .build(),
    );
    let signal = signal_tensor(WINDOW + 900, 17);
    let slide = 150;
    let policy = DecisionPolicy::default();
    let (preds, confs) = offline_path(fp32.as_ref(), &signal, slide, &test_normalizer());
    let summary = stream_path(
        Arc::clone(&pool) as Arc<dyn Engine>,
        &signal,
        slide,
        512,
        2,
        policy,
    );
    assert_eq!(summary.predictions, preds);
    assert_eq!(summary.confidences, confs);
    let pool = Arc::try_unwrap(pool).unwrap_or_else(|_| panic!("session released the pool"));
    let stats = pool.shutdown();
    assert_eq!(stats.requests, preds.len());
}

/// A backend that panics for its first batch, then serves class 7 for
/// every window.
struct FlakyBackend {
    failures_left: std::sync::atomic::AtomicUsize,
}

impl GestureClassifier for FlakyBackend {
    fn predict_batch(&self, windows: &Tensor) -> Tensor {
        use std::sync::atomic::Ordering;
        if self
            .failures_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok()
        {
            panic!("transient fault");
        }
        Tensor::from_fn(&[windows.dims()[0], 8], |i| (i % 8) as f32)
    }

    fn num_classes(&self) -> usize {
        8
    }

    fn name(&self) -> &str {
        "flaky"
    }

    fn input_shape(&self) -> Option<(usize, usize)> {
        Some((CHANNELS, WINDOW))
    }
}

/// A transient backend cancellation (worker caught a panic mid-batch) is
/// retried within the session's budget instead of killing a live stream —
/// the same resilience the batch `classify` path gets from re-routing.
#[test]
fn stream_retries_transiently_cancelled_windows() {
    let engine: Arc<dyn Engine> = Arc::new(AsyncEngine::with_config(
        Box::new(FlakyBackend {
            failures_left: std::sync::atomic::AtomicUsize::new(1),
        }),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_linger(Duration::ZERO),
    ));
    let signal = signal_tensor(WINDOW + 450, 23);
    let cfg = StreamConfig::db6()
        .with_slide(150)
        .with_lookahead(2)
        .with_retries(2);
    let mut session = StreamSession::new(engine, cfg).unwrap();
    session
        .push_samples(&interleave(&signal))
        .expect("the cancelled window must be re-submitted, not surface as an error");
    let summary = session.finish().unwrap();
    // (WINDOW + 450 - WINDOW)/150 + 1 windows, every one predicted 7 and
    // in order despite the retry.
    assert_eq!(summary.predictions, vec![7; 4]);

    // With no retry budget the same fault kills the session.
    let engine: Arc<dyn Engine> = Arc::new(AsyncEngine::with_config(
        Box::new(FlakyBackend {
            failures_left: std::sync::atomic::AtomicUsize::new(1),
        }),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_linger(Duration::ZERO),
    ));
    let cfg = StreamConfig::db6()
        .with_slide(150)
        .with_lookahead(0)
        .with_retries(0);
    let mut session = StreamSession::new(engine, cfg).unwrap();
    let err = session
        .push_samples(&interleave(&signal))
        .expect_err("retries = 0 must surface the cancellation");
    assert_eq!(err, bioformers::serve::ServeError::Cancelled);
}

/// Config validation: shape mismatches against the engine's declared
/// input shape and bad policies are rejected up front.
#[test]
fn stream_session_validates_config_against_engine() {
    let (fp32, _) = backends(61);
    let engine: Arc<dyn Engine> = Arc::new(InferenceEngine::new(Box::new(Arc::clone(&fp32))));
    // Wrong channel count vs the engine's declared [14, 300].
    let bad_shape = StreamConfig::new(8, WINDOW);
    assert!(StreamSession::new(Arc::clone(&engine), bad_shape).is_err());
    // Zero slide.
    let bad_slide = StreamConfig::db6().with_slide(0);
    assert!(StreamSession::new(Arc::clone(&engine), bad_slide).is_err());
    // Normalizer channel mismatch.
    let bad_norm =
        StreamConfig::db6().with_normalizer(Normalizer::from_stats(vec![0.0; 4], vec![1.0; 4]));
    assert!(StreamSession::new(Arc::clone(&engine), bad_norm).is_err());
    // Bad policy.
    let bad_policy = StreamConfig::db6().with_policy(DecisionPolicy {
        vote_depth: 0,
        min_hold: 0,
        confidence_floor: 0.0,
    });
    assert!(StreamSession::new(Arc::clone(&engine), bad_policy).is_err());
    // A valid config still opens.
    assert!(StreamSession::new(engine, StreamConfig::db6()).is_ok());
}
