//! Property-based tests (proptest) on cross-crate invariants.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::Model;
use bioformers::quant::qtensor::{fake_quantize, QParams};
use bioformers::quant::requant::FixedMultiplier;
use bioformers::semg::{DatasetSpec, NinaproDb6};
use bioformers::tensor::ops::softmax_rows;
use bioformers::tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quantize→dequantize error is bounded by half a step for in-range
    /// values, for any symmetric scale.
    #[test]
    fn quantization_error_bounded(absmax in 0.01f32..100.0, frac in -1.0f32..1.0) {
        let p = QParams::symmetric(absmax);
        let x = absmax * frac;
        let err = (p.dequantize(p.quantize(x)) - x).abs();
        prop_assert!(err <= p.scale * 0.5 + 1e-6);
    }

    /// Fake quantization is idempotent for any parameters.
    #[test]
    fn fake_quantize_idempotent(vals in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
        let n = vals.len();
        let t = Tensor::from_vec(vals, &[n]);
        let p = QParams::symmetric(t.abs_max().max(1e-3));
        let once = fake_quantize(&t, p);
        let twice = fake_quantize(&once, p);
        prop_assert!(once.allclose(&twice, 1e-7));
    }

    /// The fixed-point multiplier tracks real multiplication within one
    /// count for arbitrary accumulators and multipliers.
    #[test]
    fn fixed_multiplier_accuracy(m in 1e-5f64..8.0, acc in -1_000_000i32..1_000_000) {
        let f = FixedMultiplier::encode(m);
        let got = f.apply(acc) as i64;
        let want = (acc as f64 * m).round() as i64;
        prop_assert!((got - want).abs() <= 1, "m={m} acc={acc}: {got} vs {want}");
    }

    /// Softmax rows always form a probability distribution regardless of
    /// input magnitude.
    #[test]
    fn softmax_is_distribution(rows in 1usize..5, cols in 1usize..12, scale in 0.1f32..50.0) {
        let x = Tensor::from_fn(&[rows, cols], |i| ((i * 2654435761) % 1000) as f32 / 500.0 - 1.0)
            .scale(scale);
        let y = softmax_rows(&x);
        for r in 0..rows {
            let s: f32 = y.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(y.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Every valid Bioformer filter width yields consistent shapes all the
    /// way through the model.
    #[test]
    fn bioformer_shapes_consistent(filter in prop::sample::select(vec![1usize, 2, 3, 5, 10, 15, 20, 30])) {
        let cfg = BioformerConfig {
            heads: 2,
            head_dim: 4,
            hidden: 16,
            embed: 8,
            dropout: 0.0,
            ..BioformerConfig::bio1()
        }
        .with_filter(filter);
        prop_assert!(cfg.validate().is_ok());
        let mut model = Bioformer::new(&cfg);
        let x = Tensor::zeros(&[2, cfg.channels, cfg.window]);
        let y = model.forward(&x, false);
        prop_assert_eq!(y.dims(), &[2, cfg.classes]);
    }

    /// Dataset generation is deterministic and windows are always
    /// finite for any seed.
    #[test]
    fn dataset_generation_sane(seed in 0u64..1000) {
        let spec = DatasetSpec { seed, ..DatasetSpec::tiny() };
        let db = NinaproDb6::generate(&spec);
        let d = db.subject_session_dataset(0, 0);
        prop_assert!(!d.is_empty());
        prop_assert!(!d.x().has_non_finite());
        let d2 = db.subject_session_dataset(0, 0);
        prop_assert!(d.x().allclose(d2.x(), 0.0));
    }
}
