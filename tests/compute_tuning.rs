//! Integration tests for the `ComputeBackend` seam and the shape
//! autotuner across the serving layer.
//!
//! The contract under test: swapping kernels can never change what a
//! model computes — fp32 logits stay within float-reassociation noise of
//! the default plan, int8 logits are **bit-identical** (integer addition
//! is associative, so tile order cannot matter) — and `BIOFORMER_TUNE=off`
//! deterministically forces default plans everywhere.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{CHANNELS, WINDOW};
use bioformers::serve::{tuned_compute, Engine, InferenceEngine, ShardedEngine};
use bioformers::tensor::backend::{ComputeBackend, PackedCpuBackend};
use bioformers::tensor::tune::{tune, TuneTable};
use bioformers::tensor::Tensor;
use std::sync::Mutex;

/// Serialises the tests in this binary: they read (and one writes) the
/// process-global `BIOFORMER_TUNE` variable, and concurrent wall-clock
/// tuning runs would distort each other's timings.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn small_bioformer(seed: u64) -> Bioformer {
    Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed,
        ..BioformerConfig::bio1()
    })
}

/// Deterministic pseudo-random windows `[n, CHANNELS, WINDOW]`.
fn windows(n: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[n, CHANNELS, WINDOW], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

#[test]
fn tune_off_forces_default_plans_and_is_deterministic() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("BIOFORMER_TUNE", "off");
    let model = small_bioformer(21);
    let (compute, table) = tuned_compute(&model);
    let again = tune(&model.gemm_shapes());
    std::env::remove_var("BIOFORMER_TUNE");

    assert_eq!(table.tuned_shapes(), 0, "off must keep every default plan");
    assert!(
        table.log().iter().any(|l| l.contains("disabled")),
        "the table must log why it is empty: {:?}",
        table.log()
    );
    assert_eq!(again, table, "disabled tuning is trivially deterministic");
    assert!(
        compute.describe().contains("0 tuned shapes"),
        "report must show the empty table: {}",
        compute.describe()
    );
}

#[test]
fn tuned_fp32_engine_matches_default_logits_within_tolerance() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let default_engine = InferenceEngine::new(Box::new(small_bioformer(33)));
    let tuned_engine = InferenceEngine::new(Box::new(small_bioformer(33))).with_tuned_compute();
    let w = windows(4, 9);
    let base = default_engine.serve_checked(&w).expect("default serve");
    let tuned = tuned_engine.serve_checked(&w).expect("tuned serve");

    assert_eq!(base.logits.dims(), tuned.logits.dims());
    for (i, (a, b)) in base
        .logits
        .data()
        .iter()
        .zip(tuned.logits.data())
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-4,
            "logit {i} drifted past 1e-4 under the tuned plan: {a} vs {b}"
        );
    }
    assert_eq!(base.predictions, tuned.predictions);

    // The tuning state is visible in the stats schema, replica-parallel
    // to `backends`.
    assert_eq!(default_engine.compute_report(), "packed-cpu[default]");
    assert!(
        tuned_engine
            .compute_report()
            .starts_with("packed-cpu[tier="),
        "tuned report must carry the table summary: {}",
        tuned_engine.compute_report()
    );
    assert_eq!(
        tuned_engine.stats().tuning,
        vec![tuned_engine.compute_report()]
    );
}

#[test]
fn tuned_int8_logits_are_bit_identical() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = BioformerConfig::bio1();
    let mut float = Bioformer::new(&cfg);
    let dict = state_dict(&mut float);
    let calib = windows(4, 11);
    let base = QuantBioformer::convert(&cfg, &dict, &calib).expect("int8 conversion");

    let mut tuned = base.clone();
    let (compute, _table) = tuned_compute(&tuned);
    tuned.set_backend(compute);

    let w = windows(3, 17);
    let a = base.forward_batch(&w);
    let b = tuned.forward_batch(&w);
    assert_eq!(a.dims(), b.dims());
    assert_eq!(
        a.data(),
        b.data(),
        "int8 logits must be bit-identical under any kernel plan"
    );
}

#[test]
fn sharded_pool_mixes_tuned_and_default_replicas() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let pool = ShardedEngine::builder()
        .add_replica(Box::new(small_bioformer(44)))
        .add_tuned_replica(Box::new(small_bioformer(44)))
        .build();
    let out = pool.classify(windows(2, 3)).expect("pool classify");
    assert_eq!(out.logits.dims()[0], 2);

    let stats = Engine::engine_stats(&pool);
    assert_eq!(stats.backends.len(), 2);
    assert_eq!(stats.tuning.len(), 2, "one tuning report per replica");
    assert_eq!(stats.tuning[0], "packed-cpu[default]");
    assert!(
        stats.tuning[1].starts_with("packed-cpu[tier="),
        "tuned replica must report its table: {}",
        stats.tuning[1]
    );
    let last = Engine::shutdown(Box::new(pool));
    assert_eq!(last.tuning.len(), 2);
}

#[test]
fn tune_table_persists_and_drives_an_identical_backend() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let model = small_bioformer(55);
    let (_compute, table) = tuned_compute(&model);

    let path =
        std::env::temp_dir().join(format!("bioformer_tune_test_{}.json", std::process::id()));
    table.save(&path).expect("save tuning table");
    let loaded = TuneTable::load(&path).expect("reload tuning table");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, table, "JSON round-trip must preserve the table");

    // A backend rebuilt from the reloaded table answers every model shape
    // with the same plan the freshly tuned backend chose.
    let fresh = PackedCpuBackend::with_table(table);
    let reloaded = PackedCpuBackend::with_table(loaded);
    for shape in model.gemm_shapes() {
        assert_eq!(
            fresh.plan_fp32(shape.m, shape.k, shape.n),
            reloaded.plan_fp32(shape.m, shape.k, shape.n),
            "plan mismatch at {shape:?}"
        );
    }
}
