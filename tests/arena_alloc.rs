//! Allocator-level proof that steady-state inference is allocation-free.
//!
//! `tests/perf_kernels.rs` checks the arena's *own* accounting
//! (`misses == 0` after warm-up); this test goes one level deeper and
//! counts actual heap allocations with a counting `#[global_allocator]`.
//! After a warm-up forward has populated the arena pool and the packed
//! weight caches, a `forward_infer_in` pass over the full bio1 model must
//! perform **zero** heap allocations — every intermediate tensor, packed
//! panel and scratch buffer comes from the pool, and `Shape` stores its
//! dims inline.
//!
//! The counter is gated on a thread-local flag so the test harness's other
//! threads cannot pollute the measurement.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::nn::InferForward;
use bioformers::quant::QuantBioformer;
use bioformers::tensor::{parallel, Tensor, TensorArena};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Pass-through to the system allocator that counts allocation events on
/// threads that opted in via `TRACKING`.
struct CountingAllocator;

fn note_allocation() {
    // try_with: allocation during thread teardown must not panic.
    let _ = TRACKING.try_with(|t| {
        if t.get() {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_allocation();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_allocation();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_allocation();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation tracking on and returns how many heap
/// allocations it performed on this thread.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.with(|c| c.set(0));
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCATIONS.with(|c| c.get())
}

fn window(batch: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[batch, 14, 300], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// The full bio1 network converted to int8 (conversion itself allocates
/// freely — only steady-state inference is under test).
fn quant_model() -> QuantBioformer {
    let cfg = BioformerConfig::bio1();
    let mut model = Bioformer::new(&cfg);
    let dict = state_dict(&mut model);
    let calib = window(4, 11);
    QuantBioformer::convert(&cfg, &dict, &calib).expect("int8 conversion")
}

#[test]
fn steady_state_bioformer_forward_makes_zero_heap_allocations() {
    // Force the serial kernel path: thread spawns allocate, and a bio1
    // single-window forward never crosses the parallel threshold anyway.
    parallel::set_max_threads(1);
    let model = Bioformer::new(&BioformerConfig::bio1());
    let x = window(1, 3);
    let mut arena = TensorArena::new();

    // Sanity: the very first (cold) pass must be visible to the counter —
    // it builds the packed weight caches and fills the pool.
    let cold = count_allocations(|| {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert!(
        cold > 0,
        "counter failed to observe the warm-up allocations"
    );

    // Second warm-up pass: steady-state pooling established.
    let y = model.forward_infer_in(&x, &mut arena);
    arena.recycle(y);

    for trial in 0..3 {
        let steady = count_allocations(|| {
            let y = model.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
        });
        assert_eq!(
            steady, 0,
            "steady-state forward #{trial} hit the heap {steady} times"
        );
    }
    parallel::set_max_threads(0);
}

/// Autotuned kernels keep the allocation-free steady state: tuning (and
/// the repacking it forces) happens entirely at load time, so after
/// warm-up a tuned forward must hit the heap exactly as often as the
/// default one — never.
#[test]
fn steady_state_tuned_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let mut model = Bioformer::new(&BioformerConfig::bio1());
    let (compute, _table) = bioformers::serve::tuned_compute(&model);
    model.set_backend(compute);
    let x = window(1, 13);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    for trial in 0..3 {
        let steady = count_allocations(|| {
            let y = model.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
        });
        assert_eq!(
            steady, 0,
            "tuned steady-state forward #{trial} hit the heap {steady} times"
        );
    }
    parallel::set_max_threads(0);
}

#[test]
fn steady_state_batched_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let model = Bioformer::new(&BioformerConfig::bio1());
    let x = window(8, 5);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    let steady = count_allocations(|| {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert_eq!(steady, 0, "batched steady-state forward hit the heap");
    parallel::set_max_threads(0);
}

#[test]
fn steady_state_quant_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let qmodel = quant_model();
    let x = window(1, 7);
    let mut arena = TensorArena::new();

    // Cold pass: populates the model's internal QuantArena pool (and must
    // be visible to the counter, proving the instrumentation works).
    let cold = count_allocations(|| {
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert!(
        cold > 0,
        "counter failed to observe the warm-up allocations"
    );

    let y = qmodel.forward_infer_in(&x, &mut arena);
    arena.recycle(y);

    for trial in 0..3 {
        let steady = count_allocations(|| {
            let y = qmodel.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
        });
        assert_eq!(
            steady, 0,
            "steady-state int8 forward #{trial} hit the heap {steady} times"
        );
    }
    parallel::set_max_threads(0);
}

#[test]
fn steady_state_batched_quant_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let qmodel = quant_model();
    let x = window(8, 9);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    let steady = count_allocations(|| {
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert_eq!(steady, 0, "batched steady-state int8 forward hit the heap");
    parallel::set_max_threads(0);
}
