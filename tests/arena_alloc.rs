//! Allocator-level proof that steady-state inference is allocation-free.
//!
//! `tests/perf_kernels.rs` checks the arena's *own* accounting
//! (`misses == 0` after warm-up); this test goes one level deeper and
//! counts actual heap allocations with a counting `#[global_allocator]`.
//! After a warm-up forward has populated the arena pool and the packed
//! weight caches, a `forward_infer_in` pass over the full bio1 model must
//! perform **zero** heap allocations — every intermediate tensor, packed
//! panel and scratch buffer comes from the pool, and `Shape` stores its
//! dims inline.
//!
//! The counter is gated on a thread-local flag so the test harness's other
//! threads cannot pollute the measurement.

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::nn::InferForward;
use bioformers::quant::QuantBioformer;
use bioformers::serve::{
    DecisionPolicy, GestureClassifier, InferenceEngine, LatencyTrace, StageRecorder, StreamConfig,
    StreamSession,
};
use bioformers::tensor::{parallel, Tensor, TensorArena};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Pass-through to the system allocator that counts allocation events on
/// threads that opted in via `TRACKING`.
struct CountingAllocator;

fn note_allocation() {
    // try_with: allocation during thread teardown must not panic.
    let _ = TRACKING.try_with(|t| {
        if t.get() {
            let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_allocation();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_allocation();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_allocation();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation tracking on and returns how many heap
/// allocations it performed on this thread.
fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.with(|c| c.set(0));
    TRACKING.with(|t| t.set(true));
    f();
    TRACKING.with(|t| t.set(false));
    ALLOCATIONS.with(|c| c.get())
}

fn window(batch: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[batch, 14, 300], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

/// The full bio1 network converted to int8 (conversion itself allocates
/// freely — only steady-state inference is under test).
fn quant_model() -> QuantBioformer {
    let cfg = BioformerConfig::bio1();
    let mut model = Bioformer::new(&cfg);
    let dict = state_dict(&mut model);
    let calib = window(4, 11);
    QuantBioformer::convert(&cfg, &dict, &calib).expect("int8 conversion")
}

#[test]
fn steady_state_bioformer_forward_makes_zero_heap_allocations() {
    // Force the serial kernel path: thread spawns allocate, and a bio1
    // single-window forward never crosses the parallel threshold anyway.
    parallel::set_max_threads(1);
    let model = Bioformer::new(&BioformerConfig::bio1());
    let x = window(1, 3);
    let mut arena = TensorArena::new();

    // Sanity: the very first (cold) pass must be visible to the counter —
    // it builds the packed weight caches and fills the pool.
    let cold = count_allocations(|| {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert!(
        cold > 0,
        "counter failed to observe the warm-up allocations"
    );

    // Second warm-up pass: steady-state pooling established.
    let y = model.forward_infer_in(&x, &mut arena);
    arena.recycle(y);

    for trial in 0..3 {
        let steady = count_allocations(|| {
            let y = model.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
        });
        assert_eq!(
            steady, 0,
            "steady-state forward #{trial} hit the heap {steady} times"
        );
    }
    parallel::set_max_threads(0);
}

/// Autotuned kernels keep the allocation-free steady state: tuning (and
/// the repacking it forces) happens entirely at load time, so after
/// warm-up a tuned forward must hit the heap exactly as often as the
/// default one — never.
#[test]
fn steady_state_tuned_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let mut model = Bioformer::new(&BioformerConfig::bio1());
    let (compute, _table) = bioformers::serve::tuned_compute(&model);
    model.set_backend(compute);
    let x = window(1, 13);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    for trial in 0..3 {
        let steady = count_allocations(|| {
            let y = model.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
        });
        assert_eq!(
            steady, 0,
            "tuned steady-state forward #{trial} hit the heap {steady} times"
        );
    }
    parallel::set_max_threads(0);
}

#[test]
fn steady_state_batched_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let model = Bioformer::new(&BioformerConfig::bio1());
    let x = window(8, 5);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    let steady = count_allocations(|| {
        let y = model.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert_eq!(steady, 0, "batched steady-state forward hit the heap");
    parallel::set_max_threads(0);
}

#[test]
fn steady_state_quant_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let qmodel = quant_model();
    let x = window(1, 7);
    let mut arena = TensorArena::new();

    // Cold pass: populates the model's internal QuantArena pool (and must
    // be visible to the counter, proving the instrumentation works).
    let cold = count_allocations(|| {
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert!(
        cold > 0,
        "counter failed to observe the warm-up allocations"
    );

    let y = qmodel.forward_infer_in(&x, &mut arena);
    arena.recycle(y);

    for trial in 0..3 {
        let steady = count_allocations(|| {
            let y = qmodel.forward_infer_in(&x, &mut arena);
            arena.recycle(y);
        });
        assert_eq!(
            steady, 0,
            "steady-state int8 forward #{trial} hit the heap {steady} times"
        );
    }
    parallel::set_max_threads(0);
}

/// The decision-latency trace recorder is allocation-free from the very
/// first `record` call: its per-stage rings are preallocated at
/// construction and recording is four ring writes — strict zero, no
/// warm-up needed, even while the window wraps thousands of times.
#[test]
fn stage_recorder_records_traces_with_zero_heap_allocations() {
    let mut recorder = StageRecorder::new();
    let trace = LatencyTrace {
        buffering: Duration::from_millis(12),
        queueing: Duration::from_micros(300),
        compute: Duration::from_millis(2),
        smoothing: Duration::from_millis(40),
    };
    let allocations = count_allocations(|| {
        for _ in 0..10_000 {
            recorder.record(trace);
        }
    });
    assert_eq!(
        allocations, 0,
        "StageRecorder::record hit the heap {allocations} times"
    );
    assert_eq!(recorder.recorded(), 10_000);
}

/// Decision-latency tracing must not change a streaming session's
/// steady-state allocation profile: window marks, the trace ring and the
/// pending-trace backlog are all bounded structures preallocated at
/// session construction. `push_samples` itself does allocate (window
/// extraction, tensor construction, the returned event vec) — so the
/// proof is that the per-push allocation count is **identical** across
/// steady-state pushes while the trace machinery runs at full tilt
/// (alternating classes force two traced events per push).
#[test]
fn traced_stream_session_per_push_allocations_stay_constant() {
    parallel::set_max_threads(1);
    let model = Bioformer::new(&BioformerConfig::bio1());

    // Find two window signals the model classifies differently, so every
    // push flips the decision and exercises the event-tracing path.
    // Windows dominated by one hot channel spread over several argmax
    // classes even on an untrained model (uniform random windows don't —
    // the head's bias wins).
    let candidates: Vec<Tensor> = (0..14)
        .map(|hot| {
            let amp = (hot + 1) as f32 * 2.0;
            Tensor::from_fn(&[1, 14, 300], |i| {
                let ch = (i / 300) % 14;
                if ch == hot {
                    amp
                } else {
                    -amp * 0.3
                }
            })
        })
        .collect();
    let classes: Vec<usize> = candidates
        .iter()
        .map(|w| model.predict_batch(w).argmax_rows()[0])
        .collect();
    let (a, b) = {
        let first = classes[0];
        let other = classes
            .iter()
            .position(|&c| c != first)
            .expect("hot-channel windows must span at least two classes");
        (0, other)
    };
    // Interleave each `[1, 14, 300]` window into the frame stream an ADC
    // delivers (`[c0 c1 … c13]` per time step).
    let interleave = |w: &Tensor| -> Vec<f32> {
        let (c, len) = (w.dims()[1], w.dims()[2]);
        let mut out = Vec::with_capacity(c * len);
        for t in 0..len {
            for ch in 0..c {
                out.push(w.data()[ch * len + t]);
            }
        }
        out
    };
    let chunks = [interleave(&candidates[a]), interleave(&candidates[b])];

    let engine: std::sync::Arc<dyn bioformers::serve::Engine> =
        std::sync::Arc::new(InferenceEngine::new(Box::new(model)));
    let cfg = StreamConfig::db6()
        .with_slide(300)
        .with_lookahead(0)
        .with_policy(DecisionPolicy {
            vote_depth: 1,
            min_hold: 1,
            confidence_floor: 0.0,
        });
    let mut session = StreamSession::new(engine, cfg).expect("valid stream config");
    let mut traces = Vec::with_capacity(64);

    // Warm-up: 10 pushes populate the engine's arena, the packed-weight
    // caches, and leave the session's growable vecs (predictions,
    // confidences, the engine's latency samples) at capacity 16 — no
    // doubling before push #17.
    for i in 0..10 {
        session.push_samples(&chunks[i % 2]).expect("stream push");
        traces.clear();
        session.drain_new_traces(&mut traces);
    }

    let mut counts = Vec::new();
    for i in 0..4 {
        let n = count_allocations(|| {
            let events = session.push_samples(&chunks[i % 2]).expect("stream push");
            assert!(!events.is_empty(), "class flip must emit traced events");
            traces.clear();
            session.drain_new_traces(&mut traces);
        });
        assert!(!traces.is_empty(), "events must leave traces to drain");
        counts.push(n);
    }
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "tracing changed the steady-state allocation profile: {counts:?}"
    );
    let stages = session.stage_stats();
    assert!(stages.count() >= 8, "recorder missed the traced events");
    parallel::set_max_threads(0);
}

#[test]
fn steady_state_batched_quant_forward_makes_zero_heap_allocations() {
    parallel::set_max_threads(1);
    let qmodel = quant_model();
    let x = window(8, 9);
    let mut arena = TensorArena::new();
    for _ in 0..2 {
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    }
    let steady = count_allocations(|| {
        let y = qmodel.forward_infer_in(&x, &mut arena);
        arena.recycle(y);
    });
    assert_eq!(steady, 0, "batched steady-state int8 forward hit the heap");
    parallel::set_max_threads(0);
}
