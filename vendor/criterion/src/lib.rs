//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion 0.5 API the workspace's `benches/` targets
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of simple wall-clock timing.
//!
//! Reported numbers are a median over measurement batches with a warm-up
//! phase; they are honest but lack criterion's outlier analysis and HTML
//! reports. Benchmarks compile under `cargo test` and run under
//! `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every `criterion_group!` function.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Substring filter: `cargo bench -- <filter>`; the harness flag
        // `--bench` that cargo appends is not a filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            warm_up: Duration::from_millis(150),
            measurement: Duration::from_millis(400),
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            group: name.to_string(),
            c: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, None, id, f);
        self
    }
}

/// A named collection of benchmarks sharing a report prefix.
pub struct BenchmarkGroup<'a> {
    group: String,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self.c, Some(&self.group), id, f);
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    mode: Mode,
    /// Samples collected in measurement mode: (iterations, elapsed).
    samples: Vec<(u64, Duration)>,
}

enum Mode {
    /// Estimate per-iteration cost with geometrically growing batches.
    Calibrate { budget: Duration },
    /// Measure fixed-size batches until the budget is exhausted.
    Measure { iters: u64, budget: Duration },
}

impl Bencher {
    /// Times repeated calls of `f` according to the current phase.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Calibrate { budget } => {
                let start = Instant::now();
                let mut iters = 1u64;
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let dt = t0.elapsed();
                    self.samples.push((iters, dt));
                    if start.elapsed() >= budget {
                        break;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
            Mode::Measure { iters, budget } => {
                let start = Instant::now();
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    self.samples.push((iters, t0.elapsed()));
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
        }
    }
}

fn run_benchmark(c: &Criterion, group: Option<&str>, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &c.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }

    // Warm-up & calibration: find a batch size whose duration is measurable.
    let mut warm = Bencher {
        mode: Mode::Calibrate { budget: c.warm_up },
        samples: Vec::new(),
    };
    f(&mut warm);
    let per_iter = warm
        .samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .fold(f64::INFINITY, f64::min);
    if !per_iter.is_finite() {
        println!("{full:<40} (no samples — closure never called iter)");
        return;
    }
    // Aim for ~5 ms per measured batch, at least one iteration.
    let iters = ((5e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

    let mut bench = Bencher {
        mode: Mode::Measure {
            iters,
            budget: c.measurement,
        },
        samples: Vec::new(),
    };
    f(&mut bench);

    let mut per: Vec<f64> = bench
        .samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .collect();
    per.sort_by(f64::total_cmp);
    let median = per[per.len() / 2];
    let (lo, hi) = (per[0], per[per.len() - 1]);
    println!(
        "{full:<40} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_without_panicking() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            filter: None,
        };
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(5),
            filter: Some("matches-nothing".into()),
        };
        let mut calls = 0u64;
        c.bench_function("skipped", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }
}
