//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion 0.5 API the workspace's `benches/` targets
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — on top of simple wall-clock timing.
//!
//! Reported numbers are a median over measurement batches with a warm-up
//! phase and **IQR outlier rejection** (samples outside
//! `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are discarded before summarising, like
//! real criterion's Tukey analysis). Benchmarks compile under `cargo test`
//! and run under `cargo bench`.
//!
//! # Command-line flags (after `cargo bench -- …`)
//!
//! * `<substring>` — run only benchmarks whose `group/id` contains it;
//! * `--smoke` — drastically shrink the warm-up/measurement budgets: a
//!   seconds-scale sanity run for CI, not a stable measurement;
//! * `--save-baseline <name>` — write each benchmark's median to
//!   `<name>.baseline` under `criterion-shim/` in the nearest enclosing
//!   `target/` directory (override with `CRITERION_SHIM_DIR`), merging
//!   with the baseline's existing entries so several bench binaries (or a
//!   filtered run) can share one baseline name;
//! * `--baseline <name>` — compare each median against the saved baseline
//!   and print the relative change;
//! * `--fail-threshold <pct>` — with `--baseline`, exit non-zero if any
//!   benchmark regressed by more than `pct` percent: the regression gate
//!   for CI;
//! * `--json <path>` — additionally write every measurement as a JSON
//!   array of `{"id", "low_s", "median_s", "high_s"}` objects, for CI
//!   artifacts and perf-trajectory tracking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every `criterion_group!` function.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    filter: Option<String>,
    /// `--save-baseline`: collected medians, written on drop.
    save_baseline: Option<String>,
    saved: Vec<(String, f64)>,
    /// `--baseline`: reference medians loaded up front.
    baseline_name: Option<String>,
    baseline: BTreeMap<String, f64>,
    /// `--fail-threshold`: max tolerated regression, in percent.
    fail_threshold: Option<f64>,
    /// Worst observed regression in percent (positive = slower).
    worst_regression: f64,
    /// `--json`: measurement records written here on drop.
    json_out: Option<String>,
    /// Collected `(id, low, median, high)` seconds for the JSON report.
    json_entries: Vec<(String, f64, f64, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args(std::env::args().skip(1))
    }
}

impl Criterion {
    /// Builds a driver from an iterator of command-line arguments (what
    /// [`Criterion::default`] does with the process arguments).
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut filter = None;
        let mut smoke = false;
        let mut save_baseline = None;
        let mut baseline_name = None;
        let mut fail_threshold = None;
        let mut json_out = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--save-baseline" => save_baseline = args.next(),
                "--baseline" => baseline_name = args.next(),
                "--json" => json_out = args.next(),
                "--fail-threshold" => {
                    fail_threshold = args.next().and_then(|v| v.parse::<f64>().ok());
                }
                // Harness flags cargo appends (e.g. `--bench`) are not
                // filters; the first bare argument is.
                a if !a.starts_with('-') && !a.is_empty() && filter.is_none() => {
                    filter = Some(a.to_string());
                }
                _ => {}
            }
        }
        let (warm_up, measurement) = if smoke {
            (Duration::from_millis(10), Duration::from_millis(40))
        } else {
            (Duration::from_millis(150), Duration::from_millis(400))
        };
        let baseline = baseline_name
            .as_deref()
            .map(load_baseline)
            .unwrap_or_default();
        Criterion {
            warm_up,
            measurement,
            filter,
            save_baseline,
            saved: Vec::new(),
            baseline_name,
            baseline,
            fail_threshold,
            worst_regression: f64::NEG_INFINITY,
            json_out,
            json_entries: Vec::new(),
        }
    }

    /// Overrides the warm-up and measurement budgets (mainly for tests).
    pub fn with_budgets(mut self, warm_up: Duration, measurement: Duration) -> Self {
        self.warm_up = warm_up;
        self.measurement = measurement;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            group: name.to_string(),
            c: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, None, id, f);
        self
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        // Skip the write when nothing was measured (e.g. a filter matched
        // no benchmark): an existing baseline must never be clobbered by
        // an empty run.
        if let (Some(name), false) = (&self.save_baseline, self.saved.is_empty()) {
            match store_baseline(name, &self.saved) {
                Ok(path) => println!("\nbaseline '{name}' saved to {}", path.display()),
                Err(e) => eprintln!("\nfailed to save baseline '{name}': {e}"),
            }
        }
        if let (Some(path), false) = (&self.json_out, self.json_entries.is_empty()) {
            match write_json_report(path, &self.json_entries) {
                Ok(()) => println!("JSON report written to {path}"),
                Err(e) => eprintln!("failed to write JSON report {path}: {e}"),
            }
        }
        if let (Some(threshold), Some(name)) = (self.fail_threshold, &self.baseline_name) {
            if self.worst_regression > threshold {
                eprintln!(
                    "\nregression gate: worst change +{:.1}% vs baseline '{name}' \
                     exceeds --fail-threshold {threshold}%",
                    self.worst_regression
                );
                std::process::exit(1);
            }
        }
    }
}

/// A named collection of benchmarks sharing a report prefix.
pub struct BenchmarkGroup<'a> {
    group: String,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self.c, Some(&self.group), id, f);
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
pub struct Bencher {
    mode: Mode,
    /// Samples collected in measurement mode: (iterations, elapsed).
    samples: Vec<(u64, Duration)>,
}

enum Mode {
    /// Estimate per-iteration cost with geometrically growing batches.
    Calibrate { budget: Duration },
    /// Measure fixed-size batches until the budget is exhausted.
    Measure { iters: u64, budget: Duration },
}

impl Bencher {
    /// Times repeated calls of `f` according to the current phase.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        match self.mode {
            Mode::Calibrate { budget } => {
                let start = Instant::now();
                let mut iters = 1u64;
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let dt = t0.elapsed();
                    self.samples.push((iters, dt));
                    if start.elapsed() >= budget {
                        break;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
            Mode::Measure { iters, budget } => {
                let start = Instant::now();
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    self.samples.push((iters, t0.elapsed()));
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
        }
    }
}

/// Discards samples outside the Tukey fences `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`
/// and returns how many were rejected. `samples` must be sorted ascending;
/// with fewer than 4 samples nothing is rejected (quartiles are
/// meaningless). The surviving samples stay sorted.
fn reject_outliers(samples: &mut Vec<f64>) -> usize {
    let n = samples.len();
    if n < 4 {
        return 0;
    }
    // Nearest-rank quartiles over the sorted samples.
    let quartile = |q: f64| samples[((n as f64 * q).ceil() as usize).clamp(1, n) - 1];
    let (q1, q3) = (quartile(0.25), quartile(0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let before = samples.len();
    samples.retain(|&s| (lo..=hi).contains(&s));
    before - samples.len()
}

/// Where baseline files live: `$CRITERION_SHIM_DIR`, or `criterion-shim`
/// inside the nearest enclosing `target/` directory. Cargo runs bench
/// binaries with the *package* directory as CWD, so a plain relative
/// `target/…` would scatter baselines across member crates; walking up to
/// the workspace `target/` keeps them in one place however the bench is
/// invoked.
fn baseline_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("CRITERION_SHIM_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            let target = dir.join("target");
            if target.is_dir() {
                return target.join("criterion-shim");
            }
        }
    }
    PathBuf::from("target").join("criterion-shim")
}

fn baseline_path(name: &str) -> PathBuf {
    // Keep the file name tame regardless of the baseline name.
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    baseline_dir().join(format!("{safe}.baseline"))
}

/// Writes `entries` (`benchmark id`, median seconds) for `name`, merging
/// into any existing baseline of that name: several bench binaries (or a
/// filtered run) saving to the same baseline update their own entries
/// without erasing everyone else's. Returns the file path.
fn store_baseline(name: &str, entries: &[(String, f64)]) -> std::io::Result<PathBuf> {
    let mut merged = load_baseline(name);
    for (id, median) in entries {
        merged.insert(id.clone(), *median);
    }
    let path = baseline_path(name);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(&path)?;
    for (id, median) in &merged {
        writeln!(file, "{id}\t{median:e}")?;
    }
    Ok(path)
}

/// Loads a baseline saved by [`store_baseline`]; unknown or unreadable
/// baselines load as empty (every comparison just prints "no baseline").
fn load_baseline(name: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(baseline_path(name)) {
        for line in text.lines() {
            if let Some((id, value)) = line.rsplit_once('\t') {
                if let Ok(v) = value.parse::<f64>() {
                    map.insert(id.to_string(), v);
                }
            }
        }
    }
    map
}

fn run_benchmark(
    c: &mut Criterion,
    group: Option<&str>,
    id: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &c.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }

    // Warm-up & calibration: find a batch size whose duration is measurable.
    let mut warm = Bencher {
        mode: Mode::Calibrate { budget: c.warm_up },
        samples: Vec::new(),
    };
    f(&mut warm);
    let per_iter = warm
        .samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .fold(f64::INFINITY, f64::min);
    if !per_iter.is_finite() {
        println!("{full:<40} (no samples — closure never called iter)");
        return;
    }
    // Aim for ~5 ms per measured batch, at least one iteration.
    let iters = ((5e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 24);

    let mut bench = Bencher {
        mode: Mode::Measure {
            iters,
            budget: c.measurement,
        },
        samples: Vec::new(),
    };
    f(&mut bench);

    let mut per: Vec<f64> = bench
        .samples
        .iter()
        .map(|(n, d)| d.as_secs_f64() / *n as f64)
        .collect();
    per.sort_by(f64::total_cmp);
    let rejected = reject_outliers(&mut per);
    let median = per[per.len() / 2];
    let (lo, hi) = (per[0], per[per.len() - 1]);
    let outliers = if rejected > 0 {
        format!("  ({rejected} outliers rejected)")
    } else {
        String::new()
    };
    let comparison = match (&c.baseline_name, c.baseline.get(&full)) {
        (Some(name), Some(&base)) if base > 0.0 => {
            let change = (median / base - 1.0) * 100.0;
            c.worst_regression = c.worst_regression.max(change);
            format!("  [{change:+.1}% vs '{name}']")
        }
        (Some(name), _) => format!("  [no '{name}' baseline entry]"),
        (None, _) => String::new(),
    };
    println!(
        "{full:<40} time: [{} {} {}]{outliers}{comparison}",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    if c.json_out.is_some() {
        c.json_entries.push((full.clone(), lo, median, hi));
    }
    if c.save_baseline.is_some() {
        c.saved.push((full, median));
    }
}

/// Writes measurements as a JSON array of
/// `{"id", "low_s", "median_s", "high_s"}` objects. `f64::to_string`
/// output is valid JSON for finite values, and ids are escaped minimally
/// (quotes and backslashes — benchmark ids are plain identifiers in
/// practice).
fn write_json_report(path: &str, entries: &[(String, f64, f64, f64)]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "[")?;
    for (i, (id, lo, median, hi)) in entries.iter().enumerate() {
        let escaped: String = id
            .chars()
            .flat_map(|ch| match ch {
                '"' | '\\' => vec!['\\', ch],
                _ => vec![ch],
            })
            .collect();
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(
            file,
            "  {{\"id\": \"{escaped}\", \"low_s\": {lo:e}, \"median_s\": {median:e}, \"high_s\": {hi:e}}}{comma}"
        )?;
    }
    writeln!(file, "]")?;
    Ok(())
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::from_args(std::iter::empty())
            .with_budgets(Duration::from_millis(5), Duration::from_millis(10))
    }

    #[test]
    fn measures_and_reports_without_panicking() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion::from_args(["matches-nothing".to_string()].into_iter())
            .with_budgets(Duration::from_millis(5), Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("skipped", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn time_formatting_covers_magnitudes() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with(" s"));
    }

    #[test]
    fn flags_are_parsed() {
        let mut c = Criterion::from_args(
            [
                "--smoke",
                "--save-baseline",
                "main",
                "--baseline",
                "main",
                "--fail-threshold",
                "15",
                "serving",
            ]
            .into_iter()
            .map(String::from),
        );
        assert_eq!(c.warm_up, Duration::from_millis(10));
        assert_eq!(c.save_baseline.as_deref(), Some("main"));
        assert_eq!(c.baseline_name.as_deref(), Some("main"));
        assert_eq!(c.fail_threshold, Some(15.0));
        assert_eq!(c.filter.as_deref(), Some("serving"));
        // Disarm Drop: this Criterion measured nothing and must not touch
        // any real baseline file named "main" when it goes out of scope.
        c.save_baseline = None;
        c.fail_threshold = None;
    }

    #[test]
    fn iqr_rejects_only_outliers() {
        // 11 tight samples + 2 wild ones.
        let mut samples: Vec<f64> = (0..11).map(|i| 1.0 + i as f64 * 0.01).collect();
        samples.push(50.0);
        samples.push(120.0);
        samples.sort_by(f64::total_cmp);
        let rejected = reject_outliers(&mut samples);
        assert_eq!(rejected, 2);
        assert_eq!(samples.len(), 11);
        assert!(samples.iter().all(|&s| s < 2.0));

        // A tight cluster loses nothing.
        let mut tight: Vec<f64> = (0..8).map(|i| 3.0 + i as f64 * 0.001).collect();
        assert_eq!(reject_outliers(&mut tight), 0);
        assert_eq!(tight.len(), 8);

        // Too few samples for quartiles: untouched even when wild.
        let mut few = vec![1.0, 2.0, 100.0];
        assert_eq!(reject_outliers(&mut few), 0);
        assert_eq!(few.len(), 3);
    }

    #[test]
    fn json_report_is_written_and_well_formed() {
        let path = std::env::temp_dir().join(format!("criterion-json-{}.json", std::process::id()));
        let entries = vec![
            ("grp/fast".to_string(), 1.0e-6, 1.2e-6, 1.5e-6),
            ("grp/\"quoted\"".to_string(), 2.0e-3, 2.5e-3, 3.0e-3),
        ];
        write_json_report(path.to_str().unwrap(), &entries).expect("write json");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"id\": \"grp/fast\""));
        assert!(text.contains("\"median_s\": 1.2e-6"));
        assert!(text.contains("grp/\\\"quoted\\\""));
        // Exactly one comma between the two records, none trailing.
        assert_eq!(
            text.matches("}},\n").count() + text.matches("},\n").count(),
            1
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_flag_is_parsed() {
        let mut c = Criterion::from_args(["--json", "out.json"].into_iter().map(String::from));
        assert_eq!(c.json_out.as_deref(), Some("out.json"));
        // Disarm Drop: no measurements were taken, but belt and braces.
        c.json_out = None;
    }

    #[test]
    fn baseline_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        // The env var is process-global; this is the only test touching it.
        std::env::set_var("CRITERION_SHIM_DIR", &dir);
        let entries = vec![
            ("grp/fast".to_string(), 1.25e-6),
            ("grp/slow with spaces".to_string(), 3.5e-3),
        ];
        let path = store_baseline("unit test", &entries).expect("store baseline");
        assert!(path.starts_with(&dir));
        let loaded = load_baseline("unit test");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["grp/fast"], 1.25e-6);
        assert_eq!(loaded["grp/slow with spaces"], 3.5e-3);
        // A second save with different ids merges instead of truncating
        // (several bench binaries share one baseline name), and an updated
        // id takes the new value.
        let update = vec![
            ("grp/fast".to_string(), 2.0e-6),
            ("other/bench".to_string(), 7.0e-4),
        ];
        store_baseline("unit test", &update).expect("merge baseline");
        let merged = load_baseline("unit test");
        assert_eq!(merged.len(), 3);
        assert_eq!(merged["grp/fast"], 2.0e-6);
        assert_eq!(merged["grp/slow with spaces"], 3.5e-3);
        assert_eq!(merged["other/bench"], 7.0e-4);
        // Unknown baselines load as empty.
        assert!(load_baseline("missing").is_empty());
        std::env::remove_var("CRITERION_SHIM_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
