//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0.1f32..50.0`, `1usize..5`, …),
//! * [`collection::vec`] and [`prop::sample::select`].
//!
//! Each property runs for [`ProptestConfig::cases`] deterministic cases
//! seeded from the test name, so failures reproduce exactly. Unlike real
//! proptest there is **no shrinking**: a failing case panics with the drawn
//! values available via the assertion message/backtrace.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     fn addition_commutes(a in -100i32..100, b in -100i32..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//!
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration, set per `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from the test name and case index, so each case
    /// of each property draws an independent but reproducible stream.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, usize, u64, u32, i64, i32);

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is uniform over `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Mirror of the `proptest::prop` module path used via the prelude.
pub mod prop {
    /// Sampling strategies over explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy drawing uniformly from a fixed set of values.
        pub struct Select<T>(Vec<T>);

        /// Uniformly selects one of `items`.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "sample::select: empty choice set");
            Select(items)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample_value(&self, rng: &mut TestRng) -> T {
                self.0[rng.0.gen_range(0..self.0.len())].clone()
            }
        }
    }
}

/// The glob-imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a property-test condition (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` is
/// expanded into a test running `body` for every sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f32..2.0, n in 1usize..8) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(vals in crate::collection::vec(-1.0f64..1.0, 1..16)) {
            prop_assert!(!vals.is_empty() && vals.len() < 16);
            prop_assert!(vals.iter().all(|v| (-1.0..1.0).contains(v)));
        }

        #[test]
        fn select_only_yields_choices(k in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(k == 2 || k == 4 || k == 8);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let a = TestRng::for_case("t", 0);
        let b = TestRng::for_case("t", 0);
        let mut a = a;
        let mut b = b;
        let sa = (0f32..1.0).sample_value(&mut a);
        let sb = (0f32..1.0).sample_value(&mut b);
        assert_eq!(sa, sb);
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(sa, (0f32..1.0).sample_value(&mut c));
    }
}
