//! Sequence utilities (`rand::seq` subset).

use crate::Rng;

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffles the slice using `rng`.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<usize> = (0..100).collect();
        let mut b: Vec<usize> = (0..100).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let mut c: Vec<usize> = (0..100).collect();
        c.shuffle(&mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }
}
