//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate vendors exactly the `rand` 0.8 API surface the workspace uses —
//! [`Rng::gen_range`], [`Rng::gen`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`] — with no external
//! dependencies.
//!
//! The generator behind [`rngs::StdRng`] is **xoshiro256++** seeded through
//! SplitMix64 (Blackman & Vigna), not the ChaCha12 core of the real crate:
//! streams are deterministic per seed but differ from upstream `rand`. All
//! workspace tests assert statistical properties rather than exact streams,
//! so the substitution is behaviourally transparent.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f32 = rng.gen_range(-1.0..1.0);
//! assert!((-1.0..1.0).contains(&x));
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(x, again.gen_range(-1.0..1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-samplable type over its full range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges from which a `T` can be drawn uniformly (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits onto `[0, 1)` with 24-bit precision.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! impl_float_range {
    ($t:ty, $unit:ident) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                let u = $unit(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo:?}..={hi:?}");
                // Closed/half-open distinction is immaterial at float
                // resolution; reuse the half-open scheme over [lo, hi].
                let u = $unit(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    };
}

impl_float_range!(f32, unit_f32);
impl_float_range!(f64, unit_f64);

/// Lemire-style unbiased-enough mapping of 64 bits onto `[0, span)`.
fn bounded(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo:?}..={hi:?}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(((rng.next_u64() as u128 * span) >> 64) as u64 as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32, i16, i8);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&f));
            let i: i32 = rng.gen_range(-3..3);
            assert!((-3..3).contains(&i));
            let u: usize = rng.gen_range(0..14);
            assert!(u < 14);
            let inc: usize = rng.gen_range(0..=2);
            assert!(inc <= 2);
        }
    }

    #[test]
    fn full_integer_range_is_covered() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac={frac}");
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
