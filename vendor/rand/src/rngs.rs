//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: **xoshiro256++**
/// (Blackman & Vigna, 2019) seeded through SplitMix64.
///
/// Statistically strong for simulation/testing purposes and extremely fast;
/// *not* cryptographically secure (neither use exists in this workspace).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the 64-bit seed into the 256-bit state; it
        // cannot produce the all-zero state xoshiro must avoid.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_xoshiro256pp_vector() {
        // Reference: xoshiro256++ with state {1, 2, 3, 4} produces this
        // sequence (from the public domain reference implementation).
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_avoids_degenerate_state() {
        for seed in 0..64 {
            let rng = StdRng::seed_from_u64(seed);
            assert_ne!(rng.s, [0; 4]);
        }
    }
}
