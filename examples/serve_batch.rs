//! Batched serving demo: one trained Bioformer answering through the
//! [`InferenceEngine`] as fp32 and as the fully-integer int8 pipeline,
//! plus the TEMPONet baseline — all driven through the unified
//! [`Engine`] trait, with per-backend latency statistics.
//!
//! ```text
//! cargo run --release --example serve_batch
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig, TempoNet};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::{Engine, InferenceEngine};
use bioformers::tensor::Tensor;

fn main() {
    // 1. Data + a quickly-trained Bioformer (tiny synthetic DB6).
    println!("generating tiny synthetic DB6 + training a small Bioformer...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    println!(
        "fp32 test accuracy after quick training: {:.1}%",
        outcome.overall * 100.0
    );

    // 2. Quantize the same weights into the integer-only pipeline.
    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("quantization");

    // 3. A large request batch: every test window of the subject.
    let test = norm.apply(&db.test_dataset(0));
    let windows = test.x().clone();
    let n = windows.dims()[0];
    println!("request batch: {n} windows of [{CHANNELS} x {WINDOW}]\n");

    // 4. Serve through the unified `Engine` trait, per backend: the same
    //    generic calls would drive an `AsyncEngine` or a `ShardedEngine`.
    let engines: [Box<dyn Engine>; 3] = [
        Box::new(InferenceEngine::new(Box::new(model)).with_micro_batch(16)),
        Box::new(InferenceEngine::new(Box::new(qmodel)).with_micro_batch(16)),
        Box::new(InferenceEngine::new(Box::new(TempoNet::new(0))).with_micro_batch(16)),
    ];

    println!(
        "{:<16} {:>8} {:>7} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "backend", "windows", "micro", "mean", "p50", "p95", "win/s", "accuracy"
    );
    let mut predictions = Vec::new();
    for engine in &engines {
        let out = engine.classify(windows.clone()).expect("serve");
        let correct = out
            .predictions
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count();
        let stats = engine.engine_stats();
        println!(
            "{:<16} {:>8} {:>7} {:>9.2?} {:>9.2?} {:>9.2?} {:>12.0} {:>8.1}%",
            stats.backends.join("+"),
            stats.windows,
            stats.latency.micro_batches,
            stats.latency.mean,
            stats.latency.p50,
            stats.latency.p95,
            stats.throughput(),
            correct as f32 / n as f32 * 100.0,
        );
        predictions.push((stats.backends.join("+"), out.predictions));
    }

    // 5. fp32 vs int8: same weights, two precisions, one trait.
    let agree = predictions[0]
        .1
        .iter()
        .zip(predictions[1].1.iter())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nfp32/int8 prediction agreement: {}/{} ({:.1}%)",
        agree,
        n,
        agree as f32 / n as f32 * 100.0
    );
}
