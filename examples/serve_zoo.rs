//! Model-zoo demo: three model variants behind one [`StreamServer`],
//! per-session model selection, a live shadow experiment with a gated
//! promotion, and per-session user calibration.
//!
//! The walk-through:
//!
//! 1. Train a small Bioformer on tiny synthetic DB6, quantize it to int8,
//!    and quick-train a WaveFormer — three real variants with different
//!    accuracy/latency trade-offs.
//! 2. Register them in a [`ModelZoo`] and start a [`StreamServer`] over
//!    it: each tenant picks its variant by name at connect time
//!    ([`SessionOptions::with_model`]; wire clients put the same name in
//!    the protocol-v2 `Hello`).
//! 3. Run a **shadow experiment** (`bioformer-int8` shadowing the fp32
//!    incumbent): every incumbent request is duplicated to the candidate,
//!    agreement and confidence deltas are measured live, and the
//!    incumbent's outputs are untouched (`tests/serving_zoo.rs` pins that
//!    bit-exactly).
//! 4. Gate promotion on a [`PromotionPolicy`] and flip the zoo's default
//!    to the candidate once the evidence clears it.
//! 5. Open a **calibrated** session: a [`SessionCalibrator`] fits a
//!    per-channel affine transform from the session's opening windows,
//!    then freezes it for the rest of the stream.
//!
//! ```text
//! cargo run --release --example serve_zoo
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig, WaveFormer};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{CalibrationConfig, DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::{
    DecisionPolicy, Engine, GestureClassifier, InferenceEngine, ModelZoo, PromotionDecision,
    PromotionPolicy, RouteMode, SessionOptions, StreamConfig, StreamServer, StreamServerConfig,
    StreamSession,
};
use bioformers::tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

/// Interleaves a `[CHANNELS, frames]` signal into the frame-major order
/// streaming sessions consume.
fn interleave(signal: &Tensor) -> Vec<f32> {
    let frames = signal.dims()[1];
    let mut out = Vec::with_capacity(CHANNELS * frames);
    for t in 0..frames {
        for ch in 0..CHANNELS {
            out.push(signal.data()[ch * frames + t]);
        }
    }
    out
}

/// A seconds-scale prefix of one DB6 session recording, interleaved.
fn session_prefix(db: &NinaproDb6, subject: usize, session: usize) -> Vec<f32> {
    let (signal, _) = db.session_signal(subject, session);
    let total = signal.dims()[1];
    let len = (4 * db.spec().rep_samples()).min(total);
    let mut data = Vec::with_capacity(CHANNELS * len);
    for ch in 0..CHANNELS {
        data.extend_from_slice(&signal.data()[ch * total..ch * total + len]);
    }
    interleave(&Tensor::from_vec(data, &[CHANNELS, len]))
}

fn engine_over(model: Arc<dyn GestureClassifier>) -> Arc<dyn Engine> {
    Arc::new(InferenceEngine::new(Box::new(model)))
}

fn main() {
    // 1. Three variants: fp32 Bioformer, its int8 quantization, WaveFormer.
    println!("generating tiny synthetic DB6 + training the zoo's variants...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut bioformer = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let fp32_out = run_standard(&mut bioformer, &db, 0, &ProtocolConfig::quick());

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut bioformer);
    let int8 =
        Arc::new(QuantBioformer::convert(bioformer.config(), &dict, &calib).expect("quantization"));

    let mut waveformer = WaveFormer::new(7);
    let wave_out = run_standard(&mut waveformer, &db, 0, &ProtocolConfig::quick());
    let fp32 = Arc::new(bioformer);
    let waveformer = Arc::new(waveformer);
    println!(
        "variants trained: bioformer fp32 {:.1}%, waveformer {:.1}%\n",
        fp32_out.overall * 100.0,
        wave_out.overall * 100.0
    );

    // 2. The zoo: fp32 is the incumbent default; int8 and waveformer are
    //    selectable by name.
    let mut zoo = ModelZoo::new();
    zoo.register(
        "bioformer-fp32",
        engine_over(Arc::clone(&fp32) as Arc<dyn GestureClassifier>),
    )
    .unwrap();
    zoo.register(
        "bioformer-int8",
        engine_over(Arc::clone(&int8) as Arc<dyn GestureClassifier>),
    )
    .unwrap();
    zoo.register(
        "waveformer",
        engine_over(Arc::clone(&waveformer) as Arc<dyn GestureClassifier>),
    )
    .unwrap();

    // 3. Shadow experiment BEFORE sessions connect: sessions resolved onto
    //    the incumbent ride the shadow route from their first window.
    let policy = PromotionPolicy {
        min_windows: 25,
        min_agreement: 0.50,
        max_latency_ratio: 25.0,
        max_drop_rate: 0.25,
        candidate_timeout: Duration::from_secs(2),
    };
    zoo.start_experiment(
        "bioformer-fp32",
        "bioformer-int8",
        RouteMode::Shadow,
        policy,
    )
    .unwrap();
    let zoo = Arc::new(zoo);

    let stream_cfg = StreamConfig::db6()
        .with_slide(db.spec().slide)
        .with_lookahead(4)
        .with_policy(DecisionPolicy {
            vote_depth: 5,
            min_hold: 3,
            confidence_floor: 0.30,
        })
        .with_normalizer(norm.clone());
    let server = StreamServer::start_zoo(
        Arc::clone(&zoo),
        StreamServerConfig::new(stream_cfg.clone()).with_max_sessions(8),
    )
    .expect("stream server");
    println!("server over zoo: {:?}", server);

    // Three tenants, each on its own variant: the default (shadowed fp32),
    // an explicit int8 session, and an explicit waveformer session.
    let burst = 50 * CHANNELS;
    let tenants = [
        ("clinic/default", None),
        ("clinic/int8", Some("bioformer-int8")),
        ("lab/waveformer", Some("waveformer")),
    ];
    for (i, (tenant, model)) in tenants.iter().enumerate() {
        let opts = match model {
            Some(m) => SessionOptions::default().with_model(m),
            None => SessionOptions::default(),
        };
        let handle = server.connect_with(tenant, opts).expect("connect");
        let stream = session_prefix(&db, 0, i % db.spec().sessions);
        for part in stream.chunks(burst) {
            handle.send(part).expect("send");
        }
        let report = handle.finish().expect("finish");
        println!(
            "{tenant}: model {:?} → {} windows, {} events",
            model.unwrap_or("(default)"),
            report.stats.windows,
            report.summary.events.len()
        );
    }

    // An unknown model is a typed error, not a panic — the same contract
    // v2 wire clients get.
    let err = server
        .connect_with(
            "clinic/typo",
            SessionOptions::default().with_model("bioformer-v9"),
        )
        .expect_err("unknown model must be rejected");
    println!("unknown model rejected: {err}\n");

    // 4. The experiment's live evidence, then the gated promotion.
    let exp = zoo.experiment_stats().expect("experiment running");
    println!(
        "shadow experiment {} → {}: {} compared windows, agreement {:.1}%, \
         mean Δconfidence {:+.4}, drops {:.1}%",
        exp.incumbent,
        exp.candidate,
        exp.compared_windows,
        exp.agreement_rate() * 100.0,
        exp.mean_confidence_delta(),
        exp.drop_rate() * 100.0
    );
    println!(
        "  incumbent compute p99 {:?} vs candidate {:?}",
        exp.incumbent_stages.compute.p99, exp.candidate_stages.compute.p99
    );
    match zoo.promote_if_ready() {
        Some(PromotionDecision::Promote) => {
            println!(
                "promotion gate cleared → default is now {:?}",
                zoo.default_model()
            );
        }
        Some(PromotionDecision::Hold(reasons)) => {
            println!("promotion held: {reasons:?}");
        }
        None => println!("no experiment running"),
    }
    assert_eq!(zoo.default_model(), "bioformer-int8");

    let stats = server.shutdown();
    assert!(stats.rollup_consistent(), "zoo + tenant rollup must hold");
    for m in &stats.zoo.models {
        println!(
            "zoo model {:<16} default={} served {} windows",
            m.name, m.default, m.engine.windows
        );
    }

    // 5. Per-session calibration, in-process: the calibrator observes the
    //    session's opening windows (DB6 sessions open at rest), then
    //    freezes a per-channel affine transform for the rest of the
    //    stream. The checkpoint carries it across reconnects.
    let cal_cfg = stream_cfg.clone().with_calibration(CalibrationConfig {
        warmup_windows: 20,
        blend: 1.0,
    });
    let mut session = StreamSession::new(
        engine_over(Arc::clone(&int8) as Arc<dyn GestureClassifier>),
        cal_cfg,
    )
    .expect("calibrated session");
    let stream = session_prefix(&db, 0, db.spec().sessions - 1);
    for part in stream.chunks(burst) {
        session.push_samples(part).expect("calibrated push");
    }
    let cal = session.calibrator().expect("calibration enabled");
    println!(
        "\ncalibrated session: {} warm-up windows observed, frozen={}",
        cal.windows_seen(),
        cal.is_ready()
    );
    let adapted = cal.adapted().expect("frozen transform").mean()[0];
    println!(
        "per-channel affine fitted (ch0 mean {:.4} vs frozen baseline {:.4})",
        adapted,
        norm.mean()[0]
    );
    let summary = session.finish().expect("calibrated finish");
    println!(
        "calibrated stream: {} windows, {} events — see tests/serving_zoo.rs \
         for the adapted-vs-frozen DB6 accuracy benchmark",
        summary.windows,
        summary.events.len()
    );
    println!("\nmodel zoo: selection, shadow A/B, promotion, calibration ✓");
}
