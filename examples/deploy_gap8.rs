//! End-to-end deployment walk-through: train a Bioformer, quantize it to
//! the integer-only int8 pipeline, compare fp32 vs int8 accuracy, and
//! query the analytical GAP8 model for latency / energy / battery life —
//! the full Table-I story for one network.
//!
//! ```text
//! cargo run --release --example deploy_gap8
//! ```

use bioformers::core::descriptor::bioformer_descriptor;
use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::gap8::deploy::analyze_default;
use bioformers::nn::serialize::state_dict;
use bioformers::nn::trainer::evaluate;
use bioformers::quant::qat::{qat_finetune, QatConfig};
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::tensor::Tensor;

fn main() {
    let spec = DatasetSpec {
        subjects: 2,
        reps_per_gesture: 2,
        ..DatasetSpec::default()
    };
    let db = NinaproDb6::generate(&spec);
    let cfg = BioformerConfig::bio1();
    let subject = 0;

    // 1. fp32 training.
    println!(
        "1. training Bioformer (h=8, d=1) on subject {}…",
        subject + 1
    );
    let mut model = Bioformer::new(&cfg);
    let outcome = run_standard(&mut model, &db, subject, &ProtocolConfig::default());
    println!("   fp32 test accuracy: {:.2}%", outcome.overall * 100.0);

    // 2. QAT-lite, then conversion to integer-only inference.
    println!("2. quantization-aware fine-tuning + int8 conversion…");
    let train_raw = db.train_dataset(subject);
    let norm = Normalizer::fit(&train_raw);
    let train_data = norm.apply(&train_raw);
    drop(train_raw);
    let _ = qat_finetune(
        &mut model,
        train_data.x(),
        train_data.labels(),
        &QatConfig::default(),
    );
    let dict = state_dict(&mut model);
    let calib_n = train_data.x().dims()[0].min(128);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let qmodel = QuantBioformer::convert(&cfg, &dict, &calib).expect("conversion");

    // 3. fp32 vs int8 accuracy on the held-out sessions.
    let test = norm.apply(&db.test_dataset(subject));
    let (_, fp32_acc) = evaluate(&model, test.x(), test.labels(), 256);
    let int8_acc = qmodel.accuracy(test.x(), test.labels());
    println!(
        "3. after QAT: fp32 {:.2}%  |  int8 (integer-only pipeline) {:.2}%",
        fp32_acc * 100.0,
        int8_acc * 100.0
    );

    // 4. GAP8 deployment analysis.
    let report = analyze_default(&bioformer_descriptor(&cfg));
    println!("4. GAP8 deployment (analytical model, 100 MHz @ 1 V):");
    println!(
        "   memory        : {:.1} kB (paper: 94.2 kB)",
        report.memory_kb
    );
    println!("   complexity    : {:.1} MMAC (paper: 3.3)", report.mmac);
    println!(
        "   latency       : {:.2} ms (paper: 2.72 ms)",
        report.latency_ms
    );
    println!(
        "   energy        : {:.3} mJ (paper: 0.139 mJ)",
        report.energy_mj
    );
    println!(
        "   battery life  : {:.0} h on 1000 mAh when classifying every 15 ms",
        report.battery_hours
    );
    println!("   deployable    : {}", report.deployable);
}
