//! Sharded multi-replica serving demo: one trained Bioformer served as a
//! heterogeneous fp32 + int8 replica pool behind a [`ShardedEngine`] —
//! latency-aware routing, per-replica adaptive linger, pool statistics,
//! and quarantine of a failing replica with transparent re-routing.
//!
//! ```text
//! cargo run --release --example serve_sharded
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::{GestureClassifier, PoolStats, RoutingPolicy, ShardedEngine};
use bioformers::tensor::Tensor;

const CLIENTS: usize = 8;

mod common;
use common::drive_clients;

fn print_pool(stats: &PoolStats) {
    println!(
        "pool totals: {} requests, {} batches ({:.1} req/batch), {} failed, {} expired",
        stats.requests,
        stats.batches,
        stats.requests_per_batch(),
        stats.failed,
        stats.expired,
    );
    println!(
        "{:<16} {:>6} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "replica", "reqs", "batches", "share", "ewma/batch", "ewma/window", "quarantined"
    );
    for r in &stats.per_replica {
        println!(
            "{:<16} {:>6} {:>8} {:>9.1}% {:>12} {:>12} {:>12}",
            r.backend,
            r.stats.requests,
            r.stats.batches,
            r.stats.requests as f64 / stats.requests.max(1) as f64 * 100.0,
            r.ewma_batch_latency
                .map_or("-".to_string(), |d| format!("{d:.2?}")),
            r.ewma_window_latency
                .map_or("-".to_string(), |d| format!("{d:.2?}")),
            r.quarantined,
        );
    }
}

fn main() {
    // 1. Data + a quickly-trained Bioformer, quantized to int8 — the two
    //    precisions that will share the pool.
    println!("generating tiny synthetic DB6 + training a small Bioformer...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    println!(
        "fp32 test accuracy after quick training: {:.1}%\n",
        outcome.overall * 100.0
    );

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("quantization");

    let test = norm.apply(&db.test_dataset(0));
    let windows = test.x().clone();
    let labels = test.labels().to_vec();
    let n = windows.dims()[0];

    // 2. A heterogeneous pool: one fp32 replica, one int8 replica, with
    //    latency-aware routing and adaptive linger (the builder default).
    //    The int8 replica serves the same gestures faster — the router
    //    discovers that from observed batch latencies, nobody configures
    //    a speed ranking by hand.
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::LatencyAware)
        .add_replica(Box::new(model))
        .add_replica(Box::new(qmodel))
        .build();
    println!(
        "{CLIENTS} concurrent clients streaming {n} windows of [{CHANNELS} x {WINDOW}] \
         through a {} pool\n",
        pool.num_replicas()
    );

    let preds = drive_clients(&pool, &windows, CLIENTS);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();

    let stats = pool.shutdown();
    print_pool(&stats);
    println!(
        "\npool accuracy under mixed-precision serving: {:.1}% ({correct}/{n})",
        correct as f32 / n as f32 * 100.0
    );

    // 3. Quarantine demo: a replica whose backend panics on every batch is
    //    quarantined after `quarantine_after` consecutive failures; its
    //    traffic is re-routed to the healthy replica, so every request
    //    still succeeds.
    println!("\n-- quarantine & re-route demo (1 healthy + 1 exploding replica) --");
    struct Exploding;
    impl GestureClassifier for Exploding {
        fn predict_batch(&self, _windows: &Tensor) -> Tensor {
            panic!("simulated replica crash");
        }
        fn num_classes(&self) -> usize {
            8
        }
        fn name(&self) -> &str {
            "exploding"
        }
    }
    let pool = ShardedEngine::builder()
        .with_policy(RoutingPolicy::RoundRobin)
        .with_quarantine_after(1)
        .add_replica(Box::new(Exploding))
        .add_replica(Box::new(Bioformer::new(&BioformerConfig::bio1())))
        .build();
    // The crash is the demo; keep its backtrace out of the report.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut served = 0usize;
    for _ in 0..12 {
        if pool.classify(Tensor::zeros(&[1, CHANNELS, WINDOW])).is_ok() {
            served += 1;
        }
    }
    std::panic::set_hook(default_hook);
    let stats = pool.shutdown();
    print_pool(&stats);
    println!(
        "\n{served}/12 requests served despite the crash-looping replica \
         (its {} failures triggered quarantine + re-routing)",
        stats.failed
    );
}
