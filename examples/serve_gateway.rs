//! Multi-tenant gateway demo: four Ninapro DB6 session recordings stream
//! **concurrently over TCP loopback** into one [`StreamServer`] — each
//! tenant speaks the length-prefixed binary protocol through a
//! [`GatewayClient`] and gets debounced [`GestureEvent`]s pushed back
//! live. The exercise runs twice, with a guarantee matched to each
//! topology:
//!
//! 1. **fp32 over an inline [`InferenceEngine`]** — every per-window
//!    prediction and the full event timeline are checked **bit-exactly**
//!    against the offline extract-normalize-predict path.
//! 2. **A heterogeneous [`ShardedEngine`] pool** mixing an fp32 replica
//!    with a weight-2 int8 replica under latency-aware routing and
//!    request hedging — the **default production deployment** for a
//!    [`StreamServer`] (the inline pass above exists for its bit-exact
//!    guarantee; real gateways should front a pool, optionally registered
//!    as a [`ModelZoo`](bioformers::serve::ModelZoo) variant — see
//!    `examples/serve_zoo.rs`). Per-window
//!    routing makes the serving replica nondeterministic, so the check
//!    relaxes from bit-exact to *per-window membership*: every streamed
//!    `(prediction, confidence)` pair must equal what one of the two
//!    backends produces offline for that window. The pass also surfaces
//!    the pool's per-replica traffic split, hedging counters, and the
//!    per-stage decision-latency percentiles evaluated against a 100 ms
//!    end-to-end budget.
//!
//! ```text
//! cargo run --release --example serve_gateway
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::windowing::extract_all_into;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::stream::confidence;
use bioformers::serve::{
    ClientSummary, DecisionPolicy, Engine, GatewayClient, GestureClassifier, HedgeConfig,
    InferenceEngine, LatencyBudget, RoutingPolicy, ShardedEngine, StreamConfig, StreamServer,
    StreamServerConfig, StreamSession, TcpGateway,
};
use bioformers::tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

/// Interleaves a `[CHANNELS, frames]` signal into the frame-major order
/// the wire protocol streams.
fn interleave(signal: &Tensor) -> Vec<f32> {
    let frames = signal.dims()[1];
    let mut out = Vec::with_capacity(CHANNELS * frames);
    for t in 0..frames {
        for ch in 0..CHANNELS {
            out.push(signal.data()[ch * frames + t]);
        }
    }
    out
}

/// Offline reference for one tenant: window extraction + normalization +
/// one `predict_batch`, returning per-window `(argmax, confidence)`.
fn offline_predictions(
    backend: &dyn GestureClassifier,
    signal: &Tensor,
    slide: usize,
    norm: &Normalizer,
) -> Vec<(u64, f32)> {
    let mut buf = Vec::new();
    let n = extract_all_into(signal, slide, &mut buf);
    for w in buf.chunks_mut(CHANNELS * WINDOW) {
        norm.apply_window(w);
    }
    let logits = backend.predict_batch(&Tensor::from_vec(buf, &[n, CHANNELS, WINDOW]));
    logits
        .argmax_rows()
        .iter()
        .enumerate()
        .map(|(i, &p)| (p as u64, confidence(logits.row(i), p)))
        .collect()
}

/// Drives every tenant through one gateway concurrently, each on its own
/// thread and TCP connection, pushing 25 ms bursts — the cadence a
/// wearable's DMA buffer would fire at. Returns `(tenant, summary)` in
/// `sessions` order.
fn drive_tenants(
    addr: std::net::SocketAddr,
    sessions: &[(String, Vec<f32>, Tensor)],
) -> Vec<(String, ClientSummary)> {
    let burst = 50 * CHANNELS;
    std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|(tenant, stream, _)| {
                scope.spawn(move || {
                    let mut client = GatewayClient::connect(addr, tenant).expect("gateway connect");
                    for part in stream.chunks(burst) {
                        client.send_samples(part).expect("gateway send");
                    }
                    (tenant.clone(), client.finish().expect("gateway finish"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    })
}

/// Streams every session through one gateway concurrently and verifies
/// each tenant's results bit-match the offline path for `backend`.
fn serve_and_verify(
    label: &str,
    engine: Arc<dyn Engine>,
    backend: Arc<dyn GestureClassifier>,
    cfg: &StreamConfig,
    sessions: &[(String, Vec<f32>, Tensor)],
    slide: usize,
    norm: &Normalizer,
) {
    let server = Arc::new(
        StreamServer::start(
            Arc::clone(&engine),
            StreamServerConfig::new(cfg.clone()).with_max_sessions(8),
        )
        .expect("stream server"),
    );
    let mut gw = TcpGateway::bind(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let addr = gw.local_addr();
    println!("[{label}] gateway listening on {addr}");

    let summaries = drive_tenants(addr, sessions);

    // Bit-equivalence, tenant by tenant: the offline reference on the very
    // backend instance the server engine wraps, plus an uninterrupted
    // in-process reference session for the event timeline.
    for ((tenant, stream, signal), (came_back, summary)) in sessions.iter().zip(&summaries) {
        assert_eq!(tenant, came_back);
        let offline = offline_predictions(backend.as_ref(), signal, slide, norm);
        assert_eq!(
            summary.predictions, offline,
            "[{label}] {tenant}: TCP-streamed predictions diverge from offline"
        );

        let reference: Arc<dyn Engine> =
            Arc::new(InferenceEngine::new(Box::new(Arc::clone(&backend))));
        let mut rs = StreamSession::new(reference, cfg.clone()).expect("reference session");
        let mut ref_events = Vec::new();
        let burst = 50 * CHANNELS;
        for part in stream.chunks(burst) {
            ref_events.extend(rs.push_samples(part).expect("reference push"));
        }
        let ref_summary = rs.finish().expect("reference finish");
        ref_events.extend(ref_summary.events.iter().cloned());
        assert_eq!(
            &summary.events, &ref_events,
            "[{label}] {tenant}: event timeline diverges from the offline session"
        );
        println!(
            "[{label}] {tenant}: {} windows, {} events over TCP — bit-match offline ✓",
            summary.windows,
            summary.events.len()
        );
    }

    gw.shutdown();
    let stats = server.shutdown();
    assert!(
        stats.rollup_consistent(),
        "per-tenant stats must sum to totals"
    );
    println!(
        "[{label}] pool totals: {} sessions, {} chunks, {} windows, {} events across {} tenants\n",
        stats.totals.sessions,
        stats.totals.chunks,
        stats.totals.windows,
        stats.totals.events,
        stats.per_tenant.len(),
    );
}

/// Streams every session through a gateway backed by a mixed fp32 + int8
/// [`ShardedEngine`] pool and verifies per-window membership: each
/// streamed `(prediction, confidence)` pair must be exactly what one of
/// the two backends produces offline for that window.
fn serve_mixed_pool(
    pool: Arc<ShardedEngine>,
    fp32: &dyn GestureClassifier,
    int8: &dyn GestureClassifier,
    cfg: &StreamConfig,
    sessions: &[(String, Vec<f32>, Tensor)],
    slide: usize,
    norm: &Normalizer,
) {
    let label = "mixed-pool";
    let server = Arc::new(
        StreamServer::start(
            Arc::clone(&pool) as Arc<dyn Engine>,
            StreamServerConfig::new(cfg.clone()).with_max_sessions(8),
        )
        .expect("stream server"),
    );
    let mut gw = TcpGateway::bind(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let addr = gw.local_addr();
    println!("[{label}] gateway listening on {addr}");

    let summaries = drive_tenants(addr, sessions);

    for ((tenant, _, signal), (came_back, summary)) in sessions.iter().zip(&summaries) {
        assert_eq!(tenant, came_back);
        let off_fp32 = offline_predictions(fp32, signal, slide, norm);
        let off_int8 = offline_predictions(int8, signal, slide, norm);
        assert_eq!(
            summary.windows as usize,
            off_fp32.len(),
            "[{label}] {tenant}: streamed window count diverges from offline extraction"
        );
        // Routing decides per window which replica answers, so the exact
        // sequence is nondeterministic — but every answer must be the
        // bit-exact output of *some* replica, never a blend or a stale
        // value. The (prediction, confidence) pair is checked together so
        // a prediction from one backend can't borrow the other's
        // confidence.
        for (i, &pair) in summary.predictions.iter().enumerate() {
            assert!(
                pair == off_fp32[i] || pair == off_int8[i],
                "[{label}] {tenant}: window {i} returned {pair:?}, matching neither \
                 fp32 {:?} nor int8 {:?}",
                off_fp32[i],
                off_int8[i],
            );
        }
        println!(
            "[{label}] {tenant}: {} windows, {} events — every window matches fp32 or int8 ✓",
            summary.windows,
            summary.events.len()
        );
        // Per-session decision-latency percentiles travel back over the
        // wire in the finish handshake's Stats frame.
        println!("[{label}] {tenant}: stages: {}", summary.stages);
    }

    gw.shutdown();
    let stats = server.shutdown();
    assert!(
        stats.rollup_consistent(),
        "per-tenant stats must sum to totals"
    );

    // The pool's own view: traffic split, hedging counters, rollup.
    let ps = pool.stats();
    assert!(ps.rollup_consistent(), "pool totals must sum over replicas");
    for r in &ps.per_replica {
        assert!(
            r.stats.requests > 0,
            "replica {} ({}) served no traffic — routing never reached it",
            r.replica,
            r.backend
        );
        println!(
            "[{label}] replica {} [{}] weight {:.0}: {} requests, {} windows",
            r.replica, r.backend, r.weight, r.stats.requests, r.stats.windows
        );
    }
    println!(
        "[{label}] hedges fired: {}, won: {}",
        ps.hedges_fired, ps.hedges_won
    );

    // Server-side stage rollup, held against a 100 ms UX budget (the
    // docs/serving.md "Latency budget" table).
    let report = LatencyBudget::new(Duration::from_millis(100)).evaluate(&stats.stages);
    println!("[{label}] pool stages: {}", stats.stages);
    println!("[{label}] budget: {report}\n");
}

fn main() {
    // 1. Data + a quickly-trained Bioformer, quantized to int8.
    println!("generating tiny synthetic DB6 + training a small Bioformer...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    println!(
        "fp32 test accuracy after quick training: {:.1}%\n",
        outcome.overall * 100.0
    );

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel =
        Arc::new(QuantBioformer::convert(model.config(), &dict, &calib).expect("quantization"));
    let fmodel = Arc::new(model);

    // 2. Four session recordings from subject 0 — four tenants streaming
    //    concurrently into one shared engine.
    let slide = db.spec().slide;
    let sessions: Vec<(String, Vec<f32>, Tensor)> = (0..db.spec().sessions)
        .map(|s| {
            let (signal, _spans) = db.session_signal(0, s);
            (format!("subject0/session{s}"), interleave(&signal), signal)
        })
        .collect();
    println!(
        "streaming {} concurrent tenants, window {WINDOW}, slide {slide}\n",
        sessions.len()
    );

    let cfg = StreamConfig::db6()
        .with_slide(slide)
        .with_lookahead(4)
        .with_policy(DecisionPolicy {
            vote_depth: 5,
            min_hold: 3,
            confidence_floor: 0.30,
        })
        .with_normalizer(norm.clone());

    // 3. fp32 over a plain inline engine: the strongest guarantee —
    //    TCP-streamed results bit-match the offline path.
    serve_and_verify(
        "fp32",
        Arc::new(InferenceEngine::new(Box::new(Arc::clone(&fmodel)))),
        Arc::clone(&fmodel) as Arc<dyn GestureClassifier>,
        &cfg,
        &sessions,
        slide,
        &norm,
    );

    // 4. The default production deployment: one gateway over a mixed
    //    fp32 + int8 ShardedEngine pool. The int8 replica carries weight
    //    2 (it is the faster backend, so latency-aware routing should
    //    offer it the bulk of the traffic), and hedging duplicates any
    //    request the pool leaves waiting past the p95-derived delay.
    let pool = Arc::new(
        ShardedEngine::builder()
            .with_policy(RoutingPolicy::LatencyAware)
            .with_hedging(HedgeConfig::default())
            .add_replica(Box::new(Arc::clone(&fmodel) as Arc<dyn GestureClassifier>))
            .add_replica_weighted(
                Box::new(Arc::clone(&qmodel) as Arc<dyn GestureClassifier>),
                2.0,
            )
            .build(),
    );
    serve_mixed_pool(
        pool,
        fmodel.as_ref(),
        qmodel.as_ref(),
        &cfg,
        &sessions,
        slide,
        &norm,
    );

    println!("fp32 bit-exact + mixed fp32/int8 pool served 4 concurrent TCP tenants ✓");
}
