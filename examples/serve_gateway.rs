//! Multi-tenant gateway demo: four Ninapro DB6 session recordings stream
//! **concurrently over TCP loopback** into one [`StreamServer`] — each
//! tenant speaks the length-prefixed binary protocol through a
//! [`GatewayClient`], gets debounced [`GestureEvent`]s pushed back live,
//! and every per-window prediction is checked **bit-exactly** against the
//! offline extract-normalize-predict path. The whole exercise runs twice:
//! once over the fp32 Bioformer and once over its int8 quantization.
//!
//! ```text
//! cargo run --release --example serve_gateway
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::windowing::extract_all_into;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::stream::confidence;
use bioformers::serve::{
    AsyncEngine, AsyncEngineConfig, ClientSummary, DecisionPolicy, Engine, GatewayClient,
    GestureClassifier, InferenceEngine, StreamConfig, StreamServer, StreamServerConfig,
    StreamSession, TcpGateway,
};
use bioformers::tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

/// Interleaves a `[CHANNELS, frames]` signal into the frame-major order
/// the wire protocol streams.
fn interleave(signal: &Tensor) -> Vec<f32> {
    let frames = signal.dims()[1];
    let mut out = Vec::with_capacity(CHANNELS * frames);
    for t in 0..frames {
        for ch in 0..CHANNELS {
            out.push(signal.data()[ch * frames + t]);
        }
    }
    out
}

/// Streams every session through one gateway concurrently and verifies
/// each tenant's results bit-match the offline path for `backend`.
fn serve_and_verify(
    label: &str,
    engine: Arc<dyn Engine>,
    backend: Arc<dyn GestureClassifier>,
    cfg: &StreamConfig,
    sessions: &[(String, Vec<f32>, Tensor)],
    slide: usize,
    norm: &Normalizer,
) {
    let server = Arc::new(
        StreamServer::start(
            Arc::clone(&engine),
            StreamServerConfig::new(cfg.clone()).with_max_sessions(8),
        )
        .expect("stream server"),
    );
    let mut gw = TcpGateway::bind(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let addr = gw.local_addr();
    println!("[{label}] gateway listening on {addr}");

    // Every tenant on its own thread, its own TCP connection, pushing
    // 25 ms bursts — the cadence a wearable's DMA buffer would fire at.
    let burst = 50 * CHANNELS;
    let summaries: Vec<(String, ClientSummary)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|(tenant, stream, _)| {
                scope.spawn(move || {
                    let mut client = GatewayClient::connect(addr, tenant).expect("gateway connect");
                    for part in stream.chunks(burst) {
                        client.send_samples(part).expect("gateway send");
                    }
                    (tenant.clone(), client.finish().expect("gateway finish"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    // Bit-equivalence, tenant by tenant: offline window extraction +
    // normalization + one predict_batch on the very backend instance the
    // server engine wraps, plus an uninterrupted in-process reference
    // session for the event timeline.
    for ((tenant, stream, signal), (came_back, summary)) in sessions.iter().zip(&summaries) {
        assert_eq!(tenant, came_back);
        let mut buf = Vec::new();
        let n = extract_all_into(signal, slide, &mut buf);
        for w in buf.chunks_mut(CHANNELS * WINDOW) {
            norm.apply_window(w);
        }
        let logits = backend.predict_batch(&Tensor::from_vec(buf, &[n, CHANNELS, WINDOW]));
        let offline_preds = logits.argmax_rows();
        let offline_confs: Vec<f32> = offline_preds
            .iter()
            .enumerate()
            .map(|(i, &p)| confidence(logits.row(i), p))
            .collect();

        let streamed_preds: Vec<usize> = summary
            .predictions
            .iter()
            .map(|&(c, _)| c as usize)
            .collect();
        let streamed_confs: Vec<f32> = summary.predictions.iter().map(|&(_, p)| p).collect();
        assert_eq!(
            streamed_preds, offline_preds,
            "[{label}] {tenant}: TCP-streamed predictions diverge from offline"
        );
        assert_eq!(
            streamed_confs, offline_confs,
            "[{label}] {tenant}: TCP-streamed confidences diverge from offline"
        );

        let reference = InferenceEngine::new(Box::new(Arc::clone(&backend)));
        let mut rs = StreamSession::new(&reference, cfg.clone()).expect("reference session");
        let mut ref_events = Vec::new();
        for part in stream.chunks(burst) {
            ref_events.extend(rs.push_samples(part).expect("reference push"));
        }
        let ref_summary = rs.finish().expect("reference finish");
        ref_events.extend(ref_summary.events.iter().cloned());
        assert_eq!(
            &summary.events, &ref_events,
            "[{label}] {tenant}: event timeline diverges from the offline session"
        );
        println!(
            "[{label}] {tenant}: {} windows, {} events over TCP — bit-match offline ✓",
            summary.windows,
            summary.events.len()
        );
    }

    gw.shutdown();
    let stats = server.shutdown();
    assert!(
        stats.rollup_consistent(),
        "per-tenant stats must sum to totals"
    );
    println!(
        "[{label}] pool totals: {} sessions, {} chunks, {} windows, {} events across {} tenants\n",
        stats.totals.sessions,
        stats.totals.chunks,
        stats.totals.windows,
        stats.totals.events,
        stats.per_tenant.len(),
    );
}

fn main() {
    // 1. Data + a quickly-trained Bioformer, quantized to int8.
    println!("generating tiny synthetic DB6 + training a small Bioformer...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    println!(
        "fp32 test accuracy after quick training: {:.1}%\n",
        outcome.overall * 100.0
    );

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel =
        Arc::new(QuantBioformer::convert(model.config(), &dict, &calib).expect("quantization"));
    let fmodel = Arc::new(model);

    // 2. Four session recordings from subject 0 — four tenants streaming
    //    concurrently into one shared engine.
    let slide = db.spec().slide;
    let sessions: Vec<(String, Vec<f32>, Tensor)> = (0..db.spec().sessions)
        .map(|s| {
            let (signal, _spans) = db.session_signal(0, s);
            (format!("subject0/session{s}"), interleave(&signal), signal)
        })
        .collect();
    println!(
        "streaming {} concurrent tenants, window {WINDOW}, slide {slide}\n",
        sessions.len()
    );

    let cfg = StreamConfig::db6()
        .with_slide(slide)
        .with_lookahead(4)
        .with_policy(DecisionPolicy {
            vote_depth: 5,
            min_hold: 3,
            confidence_floor: 0.30,
        })
        .with_normalizer(norm.clone());

    // 3. fp32 over a plain inline engine.
    serve_and_verify(
        "fp32",
        Arc::new(InferenceEngine::new(Box::new(Arc::clone(&fmodel)))),
        Arc::clone(&fmodel) as Arc<dyn GestureClassifier>,
        &cfg,
        &sessions,
        slide,
        &norm,
    );

    // 4. int8 over a micro-batching AsyncEngine — a different topology
    //    behind the identical wire protocol and the identical guarantee.
    serve_and_verify(
        "int8",
        Arc::new(AsyncEngine::with_config(
            Box::new(Arc::clone(&qmodel)),
            AsyncEngineConfig::default()
                .with_workers(2)
                .with_micro_batch(8)
                .with_linger(Duration::from_micros(200)),
        )),
        Arc::clone(&qmodel) as Arc<dyn GestureClassifier>,
        &cfg,
        &sessions,
        slide,
        &norm,
    );

    println!("both precisions served 4 concurrent TCP tenants bit-identically to offline ✓");
}
