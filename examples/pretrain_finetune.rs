//! The paper's headline training protocol (§III-B): inter-subject
//! pre-training on the other subjects' data, then subject-specific
//! fine-tuning — compared against standard subject-only training.
//!
//! ```text
//! cargo run --release --example pretrain_finetune
//! ```

use bioformers::core::protocol::{run_pretrained, run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::semg::{DatasetSpec, NinaproDb6};
use std::time::Instant;

fn main() {
    // Small corpus so both protocols finish in a couple of minutes.
    let spec = DatasetSpec {
        subjects: 4,
        reps_per_gesture: 2,
        ..DatasetSpec::default()
    };
    let db = NinaproDb6::generate(&spec);
    let protocol = ProtocolConfig::default();
    let subject = 0;
    println!(
        "subject {} of {}: standard vs inter-subject pre-training\n",
        subject + 1,
        spec.subjects
    );

    let t0 = Instant::now();
    let mut standard = Bioformer::new(&BioformerConfig::bio1());
    let std_out = run_standard(&mut standard, &db, subject, &protocol);
    println!(
        "standard   : {:.2}%  (per session: {:?})  [{:.1?}]",
        std_out.overall * 100.0,
        std_out
            .per_session
            .iter()
            .map(|s| format!("{:.1}", s.accuracy * 100.0))
            .collect::<Vec<_>>(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let mut pretrained = Bioformer::new(&BioformerConfig::bio1());
    let pre_out = run_pretrained(&mut pretrained, &db, subject, &protocol);
    println!(
        "pre-trained: {:.2}%  (per session: {:?})  [{:.1?}]",
        pre_out.overall * 100.0,
        pre_out
            .per_session
            .iter()
            .map(|s| format!("{:.1}", s.accuracy * 100.0))
            .collect::<Vec<_>>(),
        t1.elapsed()
    );

    println!(
        "\ngain from inter-subject pre-training: {:+.2} pp (paper: +3.39 pp on Bio1)",
        (pre_out.overall - std_out.overall) * 100.0
    );
}
