//! Asynchronous serving demo: one trained Bioformer (fp32 and int8) behind
//! an [`AsyncEngine`] — concurrent clients, cross-request micro-batching,
//! per-request deadlines, bounded-queue backpressure and a graceful,
//! draining shutdown.
//!
//! ```text
//! cargo run --release --example serve_async
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{DatasetSpec, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::{AsyncEngine, AsyncEngineConfig, ServeError};
use bioformers::tensor::Tensor;
use std::time::Duration;

const CLIENTS: usize = 8;

mod common;
use common::drive_clients;

fn main() {
    // 1. Data + a quickly-trained Bioformer, quantized to int8 (same flow
    //    as `serve_batch`, which demos the synchronous engine).
    println!("generating tiny synthetic DB6 + training a small Bioformer...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    println!(
        "fp32 test accuracy after quick training: {:.1}%\n",
        outcome.overall * 100.0
    );

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(model.config(), &dict, &calib).expect("quantization");

    let test = norm.apply(&db.test_dataset(0));
    let windows = test.x().clone();
    let labels = test.labels().to_vec();
    let n = windows.dims()[0];
    println!("{CLIENTS} concurrent clients streaming {n} windows of [{CHANNELS} x {WINDOW}]\n");

    // 2. Serve both precisions through async engines under concurrent load.
    let cfg = AsyncEngineConfig::default()
        .with_workers(2)
        .with_micro_batch(16)
        .with_linger(Duration::from_millis(1));
    let backends: [Box<dyn bioformers::serve::GestureClassifier>; 2] =
        [Box::new(model), Box::new(qmodel)];

    println!(
        "{:<16} {:>7} {:>9} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "backend", "batches", "req/batch", "p50", "p95", "expired", "win/s", "accuracy"
    );
    let mut predictions: Vec<Vec<usize>> = Vec::new();
    for backend in backends {
        let name = backend.name().to_string();
        let engine = AsyncEngine::with_config(backend, cfg.clone());
        let preds = drive_clients(&engine, &windows, CLIENTS);
        let stats = engine.shutdown();
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        println!(
            "{:<16} {:>7} {:>9.1} {:>9.2?} {:>9.2?} {:>10} {:>12.0} {:>8.1}%",
            name,
            stats.batches,
            stats.requests_per_batch(),
            stats.latency.p50,
            stats.latency.p95,
            stats.expired,
            stats.throughput(),
            correct as f32 / n as f32 * 100.0,
        );
        predictions.push(preds);
    }

    let agree = predictions[0]
        .iter()
        .zip(predictions[1].iter())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nfp32/int8 prediction agreement under concurrent serving: {}/{} ({:.1}%)",
        agree,
        n,
        agree as f32 / n as f32 * 100.0
    );

    // 3. Deadlines and backpressure on a deliberately tiny engine.
    println!("\n-- deadline & backpressure demo (capacity-2 queue, 1 worker) --");
    let tiny = AsyncEngine::with_config(
        Box::new(Bioformer::new(&BioformerConfig::bio1())),
        AsyncEngineConfig::default()
            .with_workers(1)
            .with_queue_capacity(2)
            .with_linger(Duration::ZERO),
    );
    let mut accepted = 0usize;
    let mut shed = 0usize;
    let mut pending = Vec::new();
    for _ in 0..32 {
        match tiny.try_submit(Tensor::zeros(&[1, 14, 300])) {
            Ok(p) => {
                accepted += 1;
                pending.push(p);
            }
            Err(ServeError::QueueFull) => shed += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let expired = tiny
        .submit_with_deadline(Tensor::zeros(&[1, 14, 300]), Duration::from_nanos(1))
        .and_then(|p| p.wait());
    println!(
        "burst of 32 fire-and-forget submits: {accepted} accepted, {shed} shed (QueueFull); \
         1 ns deadline -> {:?}",
        expired.expect_err("deadline must expire")
    );
    for p in pending {
        let _ = p.wait();
    }
    let stats = tiny.shutdown();
    println!(
        "graceful shutdown drained the queue: {} requests served, {} expired",
        stats.requests, stats.expired
    );
}
