//! Helpers shared by the serving examples (not an example itself: Cargo
//! only auto-discovers top-level `examples/*.rs` files and directories
//! with a `main.rs`).

use bioformers::semg::{CHANNELS, WINDOW};
use bioformers::serve::Engine;
use bioformers::tensor::Tensor;

/// Closed-loop clients driving any [`Engine`]: each owns an interleaved
/// slice of `windows` and submits them one at a time. The same function
/// drives the single-replica async engine and the sharded pool — topology
/// is the engine's business, not the client's.
pub fn drive_clients(engine: &dyn Engine, windows: &Tensor, clients: usize) -> Vec<usize> {
    let n = windows.dims()[0];
    let sample = CHANNELS * WINDOW;
    let mut preds = vec![0usize; n];
    let outputs: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                let mut i = c;
                while i < n {
                    let w = Tensor::from_vec(
                        windows.data()[i * sample..(i + 1) * sample].to_vec(),
                        &[1, CHANNELS, WINDOW],
                    );
                    let out = engine.classify(w).expect("serve");
                    mine.push((i, out.predictions[0]));
                    i += clients;
                }
                mine
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    for (i, p) in outputs {
        preds[i] = p;
    }
    preds
}
