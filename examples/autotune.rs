//! Shape-specialized kernel autotuning demo: inventory the GEMM shapes a
//! bio1 Bioformer (fp32 and int8) actually issues, race the kernel/tile
//! candidates per shape, print the tuner's decision log, and serve a
//! tuned replica next to a default one in a [`ShardedEngine`] pool. The
//! winners table is persisted as tier-keyed JSON
//! (`target/bio1_tune_table.json` — CI uploads it as an artifact) and
//! reloaded to prove the round trip.
//!
//! `BIOFORMER_TUNE=off` short-circuits the tuner to an empty table
//! (default plans everywhere); the log then records why.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::{CHANNELS, WINDOW};
use bioformers::serve::{Engine, ShardedEngine};
use bioformers::tensor::backend::PackedCpuBackend;
use bioformers::tensor::tune::{tune, TuneTable};
use bioformers::tensor::Tensor;

fn windows(n: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(&[n, CHANNELS, WINDOW], |_| {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) - 0.5
    })
}

fn main() {
    // 1. The shape inventory: every distinct GEMM a bio1 forward issues,
    //    in both precisions (untrained weights — tuning only cares about
    //    shapes, not values).
    let cfg = BioformerConfig::bio1();
    let mut model = Bioformer::new(&cfg);
    let dict = state_dict(&mut model);
    let qmodel = QuantBioformer::convert(&cfg, &dict, &windows(4, 11)).expect("quantization");

    let mut shapes = model.gemm_shapes();
    shapes.extend(qmodel.gemm_shapes());
    println!("bio1 issues {} GEMM shapes (fp32 + int8):", shapes.len());
    for s in &shapes {
        let kind = if s.int8 { "int8" } else { "fp32" };
        let m = if s.m == 0 {
            "*".to_string()
        } else {
            s.m.to_string()
        };
        println!("  {kind} {m}x{}x{}", s.k, s.n);
    }

    // 2. Race the candidates. Every decision is logged — including the
    //    shapes where the default plan kept its seat and why.
    println!("\ntuning (BIOFORMER_TUNE=off would skip this)...");
    let table = tune(&shapes);
    println!("-> {}", table.summary());
    for line in table.log() {
        println!("   {line}");
    }

    // 3. Persist + reload: serving restarts load the JSON instead of
    //    re-tuning; a table from a different CPU tier would be rejected.
    std::fs::create_dir_all("target").expect("create target/");
    let path = "target/bio1_tune_table.json";
    table.save(path).expect("write tuning table");
    let reloaded = TuneTable::load(path).expect("reload tuning table");
    assert_eq!(reloaded, table, "JSON round trip must be lossless");
    println!("\ntable saved to {path} and reloaded losslessly");

    // 4. A pool mixing a tuned replica with a default one — the tuned one
    //    driven by the reloaded table, as a restarted server would do it.
    //    (`add_tuned_replica` tunes in place instead.) The stats report
    //    each replica's compute state side by side.
    let pool = ShardedEngine::builder()
        .add_replica(Box::new(Bioformer::new(&cfg)))
        .add_replica_with_compute(
            Box::new(Bioformer::new(&cfg)),
            std::sync::Arc::new(PackedCpuBackend::with_table(reloaded)),
        )
        .build();
    let out = pool.classify(windows(8, 3)).expect("pool classify");
    println!(
        "\nserved {} windows through the mixed pool",
        out.logits.dims()[0]
    );
    let stats = Engine::shutdown(Box::new(pool));
    for (name, tuning) in stats.backends.iter().zip(&stats.tuning) {
        println!("  replica {name}: {tuning}");
    }
}
