//! Complexity sweep without training: enumerates the Bioformer family
//! (heads × depth × filter) plus TEMPONet, printing the MACs / parameters /
//! GAP8 latency / energy landscape that underlies Fig. 5 and Table I.
//! Runs in milliseconds — useful for picking a configuration before
//! spending training time.
//!
//! ```text
//! cargo run --release --example pareto_sweep
//! ```

use bioformers::core::descriptor::{bioformer_descriptor, temponet_descriptor};
use bioformers::core::BioformerConfig;
use bioformers::gap8::deploy::analyze_default;

fn main() {
    println!(
        "{:<24} {:>8} {:>9} {:>9} {:>9} {:>8}",
        "network", "MMAC", "params", "lat [ms]", "E [mJ]", "batt [h]"
    );
    for (heads, depth) in [(8usize, 1usize), (2, 2), (4, 1), (2, 1)] {
        for filter in [5usize, 10, 20, 30] {
            let cfg = BioformerConfig {
                heads,
                depth,
                ..BioformerConfig::bio1()
            }
            .with_filter(filter);
            let desc = bioformer_descriptor(&cfg);
            let r = analyze_default(&desc);
            println!(
                "{:<24} {:>8.2} {:>9} {:>9.2} {:>9.3} {:>8.0}",
                desc.name,
                r.mmac,
                desc.params(),
                r.latency_ms,
                r.energy_mj,
                r.battery_hours
            );
        }
    }
    let tempo = temponet_descriptor();
    let r = analyze_default(&tempo);
    println!(
        "{:<24} {:>8.2} {:>9} {:>9.2} {:>9.3} {:>8.0}",
        tempo.name,
        r.mmac,
        tempo.params(),
        r.latency_ms,
        r.energy_mj,
        r.battery_hours
    );
    println!(
        "\npaper anchors: Bio1 f10 = 3.3 MMAC / 2.72 ms / 0.139 mJ; TEMPONet = 16 MMAC / 21.82 ms / 1.11 mJ"
    );
}
