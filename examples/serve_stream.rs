//! Streaming serving demo: a live Ninapro DB6 session replayed **sample by
//! sample** through a [`StreamSession`] — online sliding-window extraction,
//! per-channel normalization, int8 inference through an [`AsyncEngine`],
//! and majority-vote debouncing into typed [`GestureEvent`]s — then checked
//! bit-exactly against the offline batch path.
//!
//! ```text
//! cargo run --release --example serve_stream
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{Bioformer, BioformerConfig};
use bioformers::nn::serialize::state_dict;
use bioformers::quant::QuantBioformer;
use bioformers::semg::windowing::extract_all_into;
use bioformers::semg::{DatasetSpec, Gesture, NinaproDb6, Normalizer, CHANNELS, WINDOW};
use bioformers::serve::stream::confidence;
use bioformers::serve::{
    AsyncEngine, AsyncEngineConfig, DecisionPolicy, Engine, GestureClassifier, GestureEvent,
    StreamConfig, StreamSession,
};
use bioformers::tensor::Tensor;
use std::time::Duration;

fn main() {
    // 1. Data + a quickly-trained Bioformer, quantized to int8 — the
    //    precision the paper deploys on the MCU.
    println!("generating tiny synthetic DB6 + training a small Bioformer...");
    let db = NinaproDb6::generate(&DatasetSpec::tiny());
    let mut model = Bioformer::new(&BioformerConfig {
        heads: 2,
        depth: 1,
        head_dim: 8,
        hidden: 32,
        filter: 30,
        dropout: 0.0,
        seed: 1,
        ..BioformerConfig::bio1()
    });
    let outcome = run_standard(&mut model, &db, 0, &ProtocolConfig::quick());
    println!(
        "fp32 test accuracy after quick training: {:.1}%\n",
        outcome.overall * 100.0
    );

    let train = db.train_dataset(0);
    let norm = Normalizer::fit(&train);
    let train_data = norm.apply(&train);
    let calib_n = train_data.x().dims()[0].min(64);
    let calib = Tensor::from_vec(
        train_data.x().data()[..calib_n * CHANNELS * WINDOW].to_vec(),
        &[calib_n, CHANNELS, WINDOW],
    );
    let dict = state_dict(&mut model);
    let qmodel = std::sync::Arc::new(
        QuantBioformer::convert(model.config(), &dict, &calib).expect("quantization"),
    );

    // 2. One continuous held-out session recording: every gesture
    //    repetition back to back, exactly what the electrodes would
    //    deliver live.
    let session = db.spec().sessions / 2; // first held-out session
    let (signal, spans) = db.session_signal(0, session);
    let frames = signal.dims()[1];
    let slide = db.spec().slide;
    println!(
        "replaying subject 0 / session {session}: {frames} frames x {CHANNELS} channels \
         ({:.1} s of signal), window {WINDOW}, slide {slide}\n",
        frames as f32 / 2000.0
    );

    // 3. A streaming session over the int8 engine: push 25 ms bursts (the
    //    cadence a DMA buffer would fire at), get debounced events back.
    let engine = std::sync::Arc::new(AsyncEngine::with_config(
        Box::new(std::sync::Arc::clone(&qmodel)),
        AsyncEngineConfig::default()
            .with_workers(2)
            .with_micro_batch(8)
            .with_linger(Duration::from_micros(200)),
    ));
    let policy = DecisionPolicy {
        vote_depth: 5,
        min_hold: 3,
        confidence_floor: 0.30,
    };
    let cfg = StreamConfig::db6()
        .with_slide(slide)
        .with_lookahead(4)
        .with_policy(policy.clone())
        .with_normalizer(norm.clone());
    let mut session_stream =
        StreamSession::new(std::sync::Arc::clone(&engine) as _, cfg).expect("stream config");

    let stream: Vec<f32> = {
        let mut out = Vec::with_capacity(CHANNELS * frames);
        for t in 0..frames {
            for ch in 0..CHANNELS {
                out.push(signal.data()[ch * frames + t]);
            }
        }
        out
    };
    let burst = 50 * CHANNELS; // 25 ms of interleaved frames
    let mut events: Vec<GestureEvent> = Vec::new();
    for part in stream.chunks(burst) {
        events.extend(session_stream.push_samples(part).expect("stream push"));
    }
    let summary = session_stream.finish().expect("stream finish");
    events.extend(summary.events.iter().cloned());

    // 4. The decision timeline against the session's ground-truth spans.
    let truth_at = |window: usize| -> usize {
        let center = window * slide + WINDOW / 2;
        spans
            .iter()
            .find(|(_, r)| r.contains(&center))
            .map_or(0, |(g, _)| *g)
    };
    println!("decision timeline (ground truth in brackets):");
    for e in &events {
        if let GestureEvent::Started { window, .. } = e {
            println!(
                "  {e}   [truth: {}]",
                Gesture::from_label(truth_at(*window))
            );
        }
    }
    let decided = summary.windows;
    let mut active: Option<usize> = None;
    let mut starts = events.iter().filter_map(|e| match e {
        GestureEvent::Started { class, window, .. } => Some((*window, *class)),
        _ => None,
    });
    let mut next = starts.next();
    let mut correct = 0usize;
    for w in 0..decided {
        while let Some((at, class)) = next {
            if at <= w {
                active = Some(class);
                next = starts.next();
            } else {
                break;
            }
        }
        if active == Some(truth_at(w)) {
            correct += 1;
        }
    }
    println!(
        "\n{decided} windows streamed; debounced decisions match ground truth on \
         {:.1}% of windows ({} gesture events)",
        correct as f32 / decided.max(1) as f32 * 100.0,
        events.len(),
    );

    // 5. The offline-equivalence guarantee, checked live: extract every
    //    window offline, normalize, run one predict_batch — the streamed
    //    predictions must bit-match.
    let mut buf = Vec::new();
    let n = extract_all_into(&signal, slide, &mut buf);
    for w in buf.chunks_mut(CHANNELS * WINDOW) {
        norm.apply_window(w);
    }
    // The same int8 instance the streaming engine serves from (shared
    // behind the Arc), so the comparison cannot drift on conversion.
    let logits = qmodel.predict_batch(&Tensor::from_vec(buf, &[n, CHANNELS, WINDOW]));
    let offline_preds = logits.argmax_rows();
    let offline_confs: Vec<f32> = offline_preds
        .iter()
        .enumerate()
        .map(|(i, &p)| confidence(logits.row(i), p))
        .collect();
    assert_eq!(
        summary.predictions, offline_preds,
        "stream/offline equivalence violated"
    );
    assert_eq!(summary.confidences, offline_confs);
    println!(
        "stream/offline equivalence: {n} streamed window predictions bit-match the \
         offline batch path ✓"
    );

    // Shut down through the unified trait: the same call works for any
    // engine topology behind the stream.
    // The session (finished above) held the only other reference.
    let engine = std::sync::Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("session released its engine"));
    let stats = Engine::shutdown(Box::new(engine));
    println!(
        "\nengine [{}] on {} served {} windows in {} batches ({:.1} req/batch, p95 {:?})",
        stats.engine,
        stats.backends.join("+"),
        stats.windows,
        stats.batches,
        stats.requests_per_batch(),
        stats.latency.p95,
    );
}
