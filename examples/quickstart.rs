//! Quickstart: generate a synthetic Ninapro-DB6-like dataset, train a
//! Bioformer on one subject with the paper's session split, and report
//! per-session accuracy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bioformers::core::protocol::{run_standard, ProtocolConfig};
use bioformers::core::{complexity, Bioformer, BioformerConfig};
use bioformers::semg::{DatasetSpec, NinaproDb6};
use std::time::Instant;

fn main() {
    // A scaled-down DB6: full 10-subject × 10-session protocol shape, ~1 s
    // repetitions (see DatasetSpec docs for the paper-scale variant).
    let spec = DatasetSpec::default();
    let db = NinaproDb6::generate(&spec);
    println!(
        "dataset: {} subjects × {} sessions, {} windows/session",
        spec.subjects,
        spec.sessions,
        spec.windows_per_session()
    );

    // Bio1: the paper's most accurate configuration (8 heads, depth 1).
    let cfg = BioformerConfig::bio1();
    println!(
        "model:   Bioformer (h=8, d=1, filter=10) → {}",
        complexity::of_bioformer(&cfg)
    );

    let subject = 0;
    let t0 = Instant::now();
    let mut model = Bioformer::new(&cfg);
    let outcome = run_standard(&mut model, &db, subject, &ProtocolConfig::default());
    let dt = t0.elapsed();

    println!("\nsubject {} (standard training, {:.1?})", subject + 1, dt);
    for (i, stat) in outcome.train_stats.iter().enumerate() {
        println!(
            "  epoch {:>2}: train loss {:.3}, train acc {:.1}%",
            i + 1,
            stat.loss,
            stat.accuracy * 100.0
        );
    }
    println!("\nper-session test accuracy (sessions 6-10 of the paper):");
    for r in &outcome.per_session {
        println!("  session {:>2}: {:.1}%", r.session + 1, r.accuracy * 100.0);
    }
    println!("\noverall: {:.2}%", outcome.overall * 100.0);
}
